// Command simulate runs one memory-integrity simulation and prints its
// metrics.
//
// Usage:
//
//	simulate -scheme c -bench mcf -n 1000000 -l2 1048576 -block 64
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sync/atomic"

	"memverify/internal/core"
	"memverify/internal/integrity"
	"memverify/internal/obs"
	"memverify/internal/prefetch"
	"memverify/internal/runflags"
	"memverify/internal/telemetry"
	"memverify/internal/trace"
)

func main() {
	cfg := core.DefaultConfig()
	rf := runflags.Add()
	scheme := flag.String("scheme", "c", "verification scheme: base, naive, c, m, i")
	bench := flag.String("bench", "gcc", "benchmark: gcc gzip mcf twolf vortex vpr applu art swim")
	n := flag.Uint64("n", 1_000_000, "instructions to simulate")
	l2 := flag.Int("l2", cfg.L2Size, "L2 size in bytes")
	block := flag.Int("block", cfg.L2Block, "L2 block size in bytes")
	chunkBlocks := flag.Int("chunk-blocks", 0, "L2 blocks per hash chunk (default 1, or 2 for m/i)")
	throughput := flag.Float64("hash-gbps", cfg.HashBytesPerCycle, "hash unit throughput in GB/s")
	buffers := flag.Int("hash-buffers", cfg.HashBuffers, "hash read/write buffer entries")
	protected := flag.Uint64("protected", cfg.ProtectedBytes, "protected memory bytes")
	functional := flag.Bool("functional", false, "move and verify real bytes (small protected regions only)")
	hashmode := flag.String("hashmode", "full", "digest execution for functional runs: full, timing, memo")
	alg := flag.String("alg", cfg.HashAlg, "hash algorithm: md5, sha1, fnv128")
	seed := flag.Uint64("seed", 1, "workload seed")
	table1 := flag.Bool("table1", false, "print Table 1 (architectural parameters) and exit")
	record := flag.String("record", "", "record the workload's first -n instructions to a trace file and exit")
	replay := flag.String("replay", "", "drive the simulation from a recorded trace file instead of the synthetic generator")
	pf := flag.Bool("prefetch", false, "enable the tree-ancestor prefetcher")
	vcLines := flag.Int("verify-cache", 0, "dedicated verification cache size in L2-block lines (0 = share the L2)")
	vcAssoc := flag.Int("verify-assoc", 0, "dedicated verification cache associativity (0 = the L2's)")
	spec := flag.Bool("speculative", false, "deliver data before its hash check resolves; checks run in a bounded background window")
	specWindow := flag.Int("spec-window", 0, "max in-flight speculative checks (0 = default)")
	flag.Parse()

	stopProf, perr := rf.StartProfiling()
	if perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	}
	defer stopProf()

	cfg.Scheme = core.Scheme(*scheme)
	cfg.Instructions = *n
	cfg.L2Size = *l2
	cfg.L2Block = *block
	cfg.HashBytesPerCycle = *throughput
	cfg.HashBuffers = *buffers
	cfg.ProtectedBytes = *protected
	cfg.Functional = *functional
	cfg.HashMode = *hashmode
	cfg.HashAlg = *alg
	cfg.Seed = *seed
	switch {
	case *chunkBlocks > 0:
		cfg.ChunkBlocks = *chunkBlocks
	case cfg.Scheme == core.SchemeMulti || cfg.Scheme == core.SchemeIncr:
		cfg.ChunkBlocks = 2
	default:
		cfg.ChunkBlocks = 1
	}
	if *pf {
		cfg.Prefetch = prefetch.DefaultConfig()
		cfg.Prefetch.Enabled = true
	}
	cfg.VerifyCacheLines = *vcLines
	cfg.VerifyCacheAssoc = *vcAssoc
	cfg.Speculative = *spec
	cfg.SpecWindow = *specWindow

	if *table1 {
		fmt.Print(cfg.Table1())
		return
	}

	p, ok := trace.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	cfg.Benchmark = p

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		gen := trace.NewSynthetic(cfg.Benchmark, cfg.Seed)
		if err := trace.Record(f, gen, cfg.Instructions); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", cfg.Instructions, cfg.Benchmark.Name, *record)
		return
	}

	rec := rf.NewRecorder()
	cfg.Telemetry = rec

	m, merr := core.NewMachine(cfg)
	if merr != nil {
		fmt.Fprintln(os.Stderr, merr)
		os.Exit(1)
	}

	// The machine runs on this goroutine, so there is no registry that can
	// be filled live without racing the simulation: the ops server exposes
	// health (from an atomic violation counter), pprof and the flight
	// recorder while the run is in progress, and the authoritative
	// end-of-run registry via Publish once it finishes. /trace is likewise
	// only capturable after the run.
	fr := rf.NewFlightRecorder()
	defer rf.DumpFlight(fr)
	var violations atomic.Uint64
	var runDone atomic.Bool
	var capture func(cycles uint64) ([]*telemetry.Trace, error)
	if rec != nil {
		capture = func(cycles uint64) ([]*telemetry.Trace, error) {
			if !runDone.Load() {
				return nil, fmt.Errorf("trace capture is only available once the run finishes (the machine owns this process's only goroutine)")
			}
			return []*telemetry.Trace{rec.Trace.Tail(cycles)}, nil
		}
	}
	srv, serr := rf.StartOps(obs.Options{
		Health: func() obs.Health {
			return obs.Health{
				Shards:            1,
				PendingViolations: int(violations.Load()),
				Detail:            fmt.Sprintf("simulate %s/%s", *scheme, *bench),
			}
		},
		Flight:       fr,
		CaptureTrace: capture,
	})
	if serr != nil {
		fmt.Fprintln(os.Stderr, serr)
		os.Exit(1)
	}
	defer srv.Close()
	if fr != nil || srv != nil {
		m.ObserveViolations(func(v *integrity.ViolationError) {
			violations.Add(1)
			fr.Record(obs.EvViolation, 0, v.Epoch, v.Error())
		})
		fr.Record(obs.EvRunStart, -1, 0,
			fmt.Sprintf("simulate scheme=%s bench=%s n=%d", *scheme, *bench, *n))
	}

	var mt core.Metrics
	if *replay != "" {
		data, rerr := os.ReadFile(*replay)
		if rerr != nil {
			fmt.Fprintln(os.Stderr, rerr)
			os.Exit(1)
		}
		recorded, rerr := trace.ReadAll(bytes.NewReader(data))
		if rerr != nil {
			fmt.Fprintln(os.Stderr, rerr)
			os.Exit(1)
		}
		mt = m.RunWith(trace.NewReplay(*replay, recorded))
	} else {
		mt = m.Run()
	}

	runDone.Store(true)
	fr.Record(obs.EvRunEnd, -1, 0,
		fmt.Sprintf("violations=%d cycles=%d", mt.Violations, mt.Result.Cycles))

	if rec != nil {
		if err := rf.WriteTrace(rec.Trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if reg := rf.NewRegistry(); reg != nil || srv != nil {
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		m.FillRegistry(reg, &mt)
		srv.Publish(reg)
		if err := rf.WriteMetrics(reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Println(mt)
	fmt.Printf("  instructions        %d\n", mt.Result.Instructions)
	fmt.Printf("  cycles              %d\n", mt.Result.Cycles)
	fmt.Printf("  IPC                 %.4f\n", mt.IPC)
	fmt.Printf("  L2 data miss rate   %.4f%%\n", 100*mt.DataMissRate)
	fmt.Printf("  L2 hash accesses    %d (miss rate %.4f%%)\n", mt.L2HashAccesses, 100*mt.L2HashMissRate)
	fmt.Printf("  extra blocks/miss   %.3f\n", mt.ExtraPerMiss)
	fmt.Printf("  bus bytes           %d (data %d, hash %d)\n", mt.BusBytes, mt.BusDataBytes, mt.BusHashBytes)
	fmt.Printf("  bus utilization     %.2f%%\n", 100*mt.BusUtilization)
	fmt.Printf("  hash ops            %d (%d bytes)\n", mt.HashOps, mt.HashBytesHashed)
	fmt.Printf("  violations          %d\n", mt.Violations)
	if mt.VCAccesses > 0 {
		fmt.Printf("  verify cache        %d accesses (hit rate %.4f%%)\n", mt.VCAccesses, 100*mt.VCHitRate)
	}
	if ps := mt.PrefetchStats; ps.Observed > 0 {
		fmt.Printf("  prefetch            issued %d useful %d late %d dropped %d\n",
			ps.Issued, ps.Useful, ps.Late, ps.DroppedResident+ps.DroppedBudget+ps.DroppedBus)
	}
	if cfg.Speculative {
		sp := mt.Spec
		fmt.Printf("  speculative         checks %d writebacks %d overlap %d cyc stalls %d peak %d\n",
			sp.Checks, sp.Writebacks, sp.OverlapCycles, sp.WindowStalls, sp.PendingPeak)
		fmt.Printf("  walk coalescing     coalesced %d saved block reads %d\n",
			sp.Coalesced, sp.SavedBlockReads)
	}
}
