// Command loadgen drives read/write traffic through a sharded
// verification store (internal/shard) and reports verified throughput.
// Every read is checked against a per-worker mirror of the bytes the
// store should hold, and the final region is re-verified through the hash
// machinery, so a nonzero exit means a real integrity or consistency
// failure — the CI smoke test relies on that.
//
// Traffic shape is selected with -workload: the default mixed uniform
// traffic, plus the disk-style generators the cloud-storage literature
// assumes — seq (streaming), zipf (hot-spot skew) and appendlog
// (append-only writes with trailing reads). All are deterministic per
// seed.
//
// With -persist DIR the store checkpoints through internal/persist every
// -checkpoint-every ops per worker (add -anchor FILE to pin the WAL tail
// in external trusted storage), and the kill/restart flags exercise crash
// recovery end to end:
//
//	loadgen -persist d -kill-after 2 -kill-stage seg-write   # dies (exit 3)
//	loadgen -persist d -restart -expect-outcome recovered-clean,recovered-torn
//
// With -remote URL the same mirror-checked workload (and the tamper leg)
// drives a memverifyd tenant over the wire instead of an in-process
// store — the service must be byte-transparent, so a mismatch or an
// unexpected verification verdict exits nonzero exactly like the local
// mode:
//
//	loadgen -remote http://127.0.0.1:8380 -tenant t0 -workers 25 -ops 10000
//
// Usage:
//
//	loadgen -scheme c -shards 4 -workers 4 -ops 20000
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"memverify/internal/cache"
	"memverify/internal/core"
	"memverify/internal/integrity"
	"memverify/internal/obs"
	"memverify/internal/persist"
	"memverify/internal/prefetch"
	"memverify/internal/runflags"
	"memverify/internal/service/client"
	"memverify/internal/shard"
	"memverify/internal/telemetry"
	"memverify/internal/trace"
)

// target abstracts where the traffic lands: an in-process shard.Store or
// a memverifyd tenant over the wire. Both expose the same addressing and
// batch surface, so the mirror-checked workload is oblivious.
type target interface {
	Span() uint64
	ShardFor(off uint64) int
	NewBatch() opBatch
}

// opBatch is the batch surface the workload drives. *shard.Batch and
// *client.Batch both satisfy it; the adapters below only fix up the
// NewBatch return type.
type opBatch interface {
	Load(off uint64, p []byte)
	Store(off uint64, p []byte)
	Wait() error
}

type localTarget struct{ s *shard.Store }

func (t localTarget) Span() uint64            { return t.s.Span() }
func (t localTarget) ShardFor(off uint64) int { return t.s.ShardFor(off) }
func (t localTarget) NewBatch() opBatch       { return t.s.NewBatch() }

type remoteTarget struct{ c *client.Client }

func (t remoteTarget) Span() uint64            { return t.c.Span() }
func (t remoteTarget) ShardFor(off uint64) int { return t.c.ShardFor(off) }
func (t remoteTarget) NewBatch() opBatch       { return t.c.NewBatch() }

// errKilled signals the simulated process death of -kill-after: main
// exits 3 so scripts can tell "died at the kill point as asked" from
// failure.
var errKilled = errors.New("killed at the injected crash point")

// errFailed signals a failure whose message was already printed.
var errFailed = errors.New("failed")

func main() {
	err := run()
	switch {
	case err == nil:
	case errors.Is(err, errKilled):
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(3)
	case errors.Is(err, errFailed):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// opGen produces one worker's deterministic operation stream.
type opGen struct {
	kind      string
	rng       *rand.Rand
	stripe    uint64
	maxLen    int
	writeFrac float64

	head uint64     // seq / appendlog write cursor
	zipf *rand.Zipf // zipf block sampler
}

func newOpGen(kind string, seed int64, stripe uint64, maxLen int, writeFrac float64) (*opGen, error) {
	g := &opGen{kind: kind, rng: rand.New(rand.NewSource(seed)), stripe: stripe,
		maxLen: maxLen, writeFrac: writeFrac}
	switch kind {
	case "mixed", "seq", "appendlog":
	case "zipf":
		blocks := stripe / 64
		if blocks < 2 {
			return nil, fmt.Errorf("stripe %d too small for the zipf workload", stripe)
		}
		g.zipf = rand.NewZipf(g.rng, 1.2, 1, blocks-1)
	default:
		return nil, fmt.Errorf("unknown workload %q (want mixed, seq, zipf or appendlog)", kind)
	}
	return g, nil
}

// next returns the offset, length and direction of the next operation.
// Offsets are stripe-relative and always satisfy off+len <= stripe.
func (g *opGen) next() (off uint64, length int, write bool) {
	length = 1 + g.rng.Intn(g.maxLen)
	limit := g.stripe - uint64(length)
	switch g.kind {
	case "seq":
		// Streaming: a cursor sweeps the stripe; reads trail the cursor.
		if g.head > limit {
			g.head = 0
		}
		off = g.head
		g.head += uint64(length)
		write = g.rng.Float64() < g.writeFrac
	case "zipf":
		// Hot-spot skew: block popularity is zipf-distributed, the byte
		// inside the block uniform.
		off = g.zipf.Uint64() * 64
		if off > limit {
			off = limit
		}
		write = g.rng.Float64() < g.writeFrac
	case "appendlog":
		// Append-only writes at the head; reads sample the recent
		// window, like a log follower.
		if g.rng.Float64() < g.writeFrac {
			if g.head > limit {
				g.head = 0
			}
			off = g.head
			g.head += uint64(length)
			write = true
		} else {
			window := uint64(16 << 10)
			if window > g.head {
				window = g.head
			}
			if window == 0 {
				off = 0
			} else {
				off = g.head - 1 - g.rng.Uint64()%window
			}
			if off > limit {
				off = limit
			}
		}
	default: // mixed
		off = g.rng.Uint64() % (limit + 1)
		write = g.rng.Float64() < g.writeFrac
	}
	return off, length, write
}

func run() error {
	cfg := core.DefaultConfig()
	scheme := flag.String("scheme", "c", "verification scheme: naive, c, m, i")
	shards := flag.Int("shards", 4, "number of independent verification shards")
	workers := flag.Int("workers", 4, "concurrent traffic generators (each owns a disjoint stripe)")
	ops := flag.Int("ops", 20_000, "operations per worker")
	writeFrac := flag.Float64("write-frac", 0.5, "fraction of operations that are writes")
	maxLen := flag.Int("max-len", 256, "maximum bytes per operation")
	batch := flag.Int("batch", 16, "operations in flight per worker before completion is collected")
	queueDepth := flag.Int("queue-depth", 64, "per-shard request queue depth")
	protected := flag.Uint64("protected", 8<<20, "total protected bytes across all shards")
	l2 := flag.Int("l2", 256<<10, "per-shard L2 size in bytes")
	block := flag.Int("block", cfg.L2Block, "L2 block size in bytes")
	chunkBlocks := flag.Int("chunk-blocks", 0, "L2 blocks per hash chunk (default 1, or 2 for m/i)")
	hashmode := flag.String("hashmode", "full", "digest execution: full, timing, memo")
	alg := flag.String("alg", cfg.HashAlg, "hash algorithm: md5, sha1, fnv128")
	policy := flag.String("policy", "record", "violation policy: record, halt, retry")
	seed := flag.Uint64("seed", 1, "traffic seed")
	tamper := flag.Int("tamper", -1, "corrupt this shard's memory after the traffic phase (expect a nonzero exit)")
	verify := flag.Bool("verify", true, "re-read and verify the whole region after the traffic phase")
	pf := flag.Bool("prefetch", false, "enable the tree-ancestor prefetcher on every shard's machine")
	vcLines := flag.Int("verify-cache", 0, "dedicated verification cache size in L2-block lines per shard (0 = share the L2)")
	vcAssoc := flag.Int("verify-assoc", 0, "dedicated verification cache associativity (0 = the L2's)")
	spec := flag.Bool("speculative", false, "run every shard's machine with the speculative verification pipeline; batch Waits become epoch barriers")
	specWindow := flag.Int("spec-window", 0, "max in-flight speculative checks per shard (0 = default)")
	workload := flag.String("workload", "mixed", "traffic shape: mixed, seq, zipf, appendlog")
	remote := flag.String("remote", "", "drive a memverifyd instance at this URL instead of an in-process store")
	tenantName := flag.String("tenant", "t0", "with -remote: the tenant to drive")
	persistDir := flag.String("persist", "", "checkpoint the store into this directory (enables the persistence layer)")
	anchorPath := flag.String("anchor", "", "with -persist: pin the WAL tail in this external trusted-storage file (whole-directory replay detection)")
	ckptEvery := flag.Int("checkpoint-every", 2000, "ops per worker between checkpoints (persist mode)")
	killAfter := flag.Int("kill-after", 0, "die at -kill-stage during the Nth checkpoint (persist mode; exit 3)")
	killStage := flag.String("kill-stage", persist.StageSegWrite,
		"crash point: wal-write, wal-sync, between-wal-checkpoint, seg-write, seg-sync, manifest-write, manifest-rename, any")
	restart := flag.Bool("restart", false, "recover the store from -persist before generating traffic")
	expectOutcome := flag.String("expect-outcome", "", "with -restart: comma-separated acceptable recovery outcomes; exit 0 on match without running traffic, 1 otherwise")
	opsLinger := flag.Duration("ops-linger", 0, "keep the ops server alive this long after the run completes (lets a scraper read the final /metrics, /healthz and /flightrecord)")
	progress := flag.Bool("progress", true, "with -ops-listen: print a one-line throughput/violations status per sample")
	rf := runflags.Add()
	flag.Parse()

	stopProf, err := rf.StartProfiling()
	if err != nil {
		return err
	}
	defer stopProf()

	cfg.Scheme = core.Scheme(*scheme)
	cfg.Benchmark = trace.Uniform("loadgen", 32<<10)
	cfg.Benchmark.CodeSet = 4 << 10
	cfg.ProtectedBytes = *protected
	cfg.L2Size = *l2
	cfg.L2Block = *block
	cfg.HashMode = *hashmode
	cfg.HashAlg = *alg
	cfg.ViolationPolicy = *policy
	cfg.Functional = true
	cfg.Seed = *seed
	switch {
	case *chunkBlocks > 0:
		cfg.ChunkBlocks = *chunkBlocks
	case cfg.Scheme == core.SchemeMulti || cfg.Scheme == core.SchemeIncr:
		cfg.ChunkBlocks = 2
	default:
		cfg.ChunkBlocks = 1
	}
	if *pf {
		cfg.Prefetch = prefetch.DefaultConfig()
		cfg.Prefetch.Enabled = true
	}
	cfg.VerifyCacheLines = *vcLines
	cfg.VerifyCacheAssoc = *vcAssoc
	cfg.Speculative = *spec
	cfg.SpecWindow = *specWindow

	if *workers < 1 || *ops < 1 || *batch < 1 || *maxLen < 1 {
		return fmt.Errorf("workers, ops, batch and max-len must be positive")
	}

	recs := rf.NewRecorders(*shards)
	fr := rf.NewFlightRecorder()
	defer rf.DumpFlight(fr)

	if *remote != "" {
		if *persistDir != "" || *restart {
			return fmt.Errorf("-remote drives an external daemon; its persistence is the daemon's -persist, not loadgen's")
		}
		return runRemote(*remote, *tenantName, *workload, *workers, *ops, *batch, *maxLen,
			*writeFrac, *seed, *tamper, *verify, fr)
	}

	pobs := &persistObs{}
	scfg := shard.Config{Machine: cfg, Shards: *shards, QueueDepth: *queueDepth, Recorders: recs,
		OnViolation: func(sh int, v *integrity.ViolationError, halted bool) {
			fr.Record(obs.EvViolation, sh, v.Epoch, v.Error())
			if halted {
				fr.Record(obs.EvShardHalt, sh, v.Epoch, "halt policy tripped")
			}
		}}

	// Build (or recover) the store.
	var s *shard.Store
	if *restart {
		if *persistDir == "" {
			return fmt.Errorf("-restart needs -persist DIR")
		}
		rs, rec, err := persist.RecoverStore(persist.Options{Dir: *persistDir, AnchorPath: *anchorPath, OnEvent: persistEvent(fr)}, scfg)
		if err != nil {
			return err
		}
		s = rs
		pobs.noteRecovery(rec)
		fmt.Printf("loadgen: recovery outcome=%s epoch=%d rolled_forward=%t wal_repaired=%t",
			rec.Outcome, rec.Epoch, rec.RolledForward, rec.WALRepaired)
		if rec.Detail != "" {
			fmt.Printf(" detail=%q", rec.Detail)
		}
		fmt.Println()
		if *expectOutcome != "" {
			s.Close()
			for _, want := range strings.Split(*expectOutcome, ",") {
				if string(rec.Outcome) == strings.TrimSpace(want) {
					return nil
				}
			}
			fmt.Fprintf(os.Stderr, "loadgen: recovery outcome %s not in %q\n", rec.Outcome, *expectOutcome)
			return errFailed
		}
		if rec.Outcome == persist.OutcomeViolation {
			s.Close()
			fmt.Fprintf(os.Stderr, "loadgen: VIOLATION at recovery: %s\n", rec.Detail)
			return errFailed
		}
	} else {
		s, err = shard.New(scfg)
		if err != nil {
			return err
		}
	}
	defer s.Close()

	span := s.Span()
	stripe := span / uint64(*workers)
	if stripe <= uint64(*maxLen) {
		return fmt.Errorf("stripe %d too small for %dB operations; fewer workers or more protected bytes", stripe, *maxLen)
	}

	// The live ops surface: sampler fills route through the shard worker
	// queues, so scraping is safe while traffic runs. No trace recorders
	// are attached by -ops-listen alone — /trace works only when -trace or
	// -metrics asked for recorders, keeping the enabled-but-unscraped
	// overhead within the telemetry budget.
	var progressFn func(obs.Sample)
	if *progress {
		progressFn = func(sm obs.Sample) {
			fmt.Fprintf(os.Stderr,
				"loadgen: status ops/sec=%.0f bytes/sec=%.0f violations=%d halted_shards=%.0f\n",
				sm.Derived[obs.SeriesOpsPerSec], sm.Derived[obs.SeriesBytesPerSec],
				sm.Counters["shard.violations"], sm.Gauges["shard.halted_shards"])
		}
	}
	srv, err := rf.StartOps(obs.Options{
		Fill: func(reg *telemetry.Registry) {
			s.FillRegistry(reg)
			pobs.fill(reg)
		},
		Health: func() obs.Health {
			n, halted, viol := s.Health()
			return obs.Health{Shards: n, HaltedShards: halted, PendingViolations: viol}
		},
		Flight:       fr,
		CaptureTrace: captureTrace(s, recs),
		OnSample:     progressFn,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fr.Record(obs.EvRunStart, -1, 0, fmt.Sprintf("scheme=%s shards=%d workers=%d ops=%d workload=%s",
		*scheme, *shards, *workers, *ops, *workload))

	var failed bool
	start := time.Now()
	if *persistDir != "" {
		err = runPersistent(s, scfg, *persistDir, *anchorPath, *workload, *workers, *ops, *ckptEvery,
			*batch, *maxLen, *writeFrac, *seed, *killAfter, *killStage, *policy, *restart, fr, pobs)
		if err != nil {
			if errors.Is(err, errKilled) {
				return err
			}
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			failed = true
		}
	} else {
		failed = !runConcurrent(localTarget{s}, *workload, *workers, *ops, *batch, *maxLen, *writeFrac, *seed)
	}
	trafficElapsed := time.Since(start)

	if *tamper >= 0 && *tamper < s.Shards() {
		s.WithShard(*tamper, func(m *core.Machine) {
			m.EvictProtected()
			m.Adversary().Corrupt(m.ProgAddr(0), 0xFF)
		})
		fr.Record(obs.EvTamper, *tamper, 0, "injected corruption after the traffic phase")
	}
	if *verify && !failed {
		if err := s.VerifyAll(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: final verification failed:", err)
			failed = true
		}
	}
	for _, v := range s.Violations() {
		fmt.Fprintf(os.Stderr, "loadgen: VIOLATION on shard %d: %v\n", v.Shard, v.Err)
		failed = true
	}

	// Sampling must stop before Close: once the workers exit, fills would
	// run inline on whatever goroutine asked. The server itself stays up
	// (serving the published final state) through the linger window.
	srv.StopSampling()
	s.Close()
	agg := s.Metrics()
	fr.Record(obs.EvRunEnd, -1, 0, fmt.Sprintf("failed=%t violations=%d", failed, len(s.Violations())))
	if srv != nil || rf.MetricsPath() != "" {
		finalReg := telemetry.NewRegistry()
		s.FillRegistry(finalReg)
		pobs.fill(finalReg)
		srv.Publish(finalReg)
		if err := rf.WriteMetrics(finalReg); err != nil {
			return err
		}
	}
	if recs != nil {
		traces := make([]*telemetry.Trace, len(recs))
		for i, r := range recs {
			traces[i] = r.Trace
		}
		if err := rf.WriteTrace(traces...); err != nil {
			return err
		}
	}

	sec := trafficElapsed.Seconds()
	fmt.Printf("loadgen: scheme=%s hashmode=%s workload=%s shards=%d workers=%d ops=%d bytes=%d elapsed=%.3fs\n",
		*scheme, *hashmode, *workload, *shards, *workers, agg.OpsSubmitted, agg.BytesSubmitted, sec)
	fmt.Printf("loadgen: ops_per_sec=%.1f bytes_per_sec=%.1f checks=%d machine_cycles=%d\n",
		float64(agg.OpsSubmitted)/sec, float64(agg.BytesSubmitted)/sec,
		agg.Total.IntegrityStats.Checks, agg.Total.Result.Cycles)
	t := &agg.Total
	if t.VCAccesses > 0 {
		vs := &t.VCStats
		fmt.Printf("loadgen: vc accesses=%d hit_rate=%.4f evictions=%d writebacks=%d\n",
			t.VCAccesses, t.VCHitRate, vs.Evictions[cache.Hash], vs.WriteBacks[cache.Hash])
	}
	if ps := &t.PrefetchStats; ps.Observed > 0 {
		acc := 0.0
		if ps.Issued > 0 {
			acc = float64(ps.Useful) / float64(ps.Issued)
		}
		fmt.Printf("loadgen: prefetch observed=%d predicted=%d issued=%d useful=%d late=%d dropped=%d accuracy=%.4f\n",
			ps.Observed, ps.Predicted, ps.Issued, ps.Useful, ps.Late,
			ps.DroppedResident+ps.DroppedBudget+ps.DroppedBus, acc)
	}
	if *spec {
		sp := &t.Spec
		fmt.Printf("loadgen: spec checks=%d writebacks=%d overlap_cycles=%d window_stalls=%d barriers=%d barrier_wait_cycles=%d coalesced=%d saved_block_reads=%d\n",
			sp.Checks, sp.Writebacks, sp.OverlapCycles, sp.WindowStalls, sp.Barriers, sp.BarrierWaitCycles,
			sp.Coalesced, sp.SavedBlockReads)
	}
	if srv != nil && *opsLinger > 0 {
		// Signal-aware wait: SIGINT/SIGTERM cuts the linger short so the
		// deferred teardown (server close, flight dump) still runs —
		// a bare sleep would ignore the signal until the window expired
		// (or die without dumping, losing the post-mortem evidence).
		fmt.Fprintf(os.Stderr, "loadgen: ops server lingering %s at http://%s\n", *opsLinger, srv.Addr())
		if sig := runflags.Linger(*opsLinger); sig != nil {
			fmt.Fprintf(os.Stderr, "loadgen: linger cut short by %s\n", sig)
			fr.Record(obs.EvSignal, -1, 0, fmt.Sprintf("linger cut short by %s", sig))
		}
	}
	if failed {
		return errFailed
	}
	return nil
}

// runRemote drives a memverifyd tenant with the same mirror-checked
// workload as the local mode: byte mismatches, violations and unexpected
// verification verdicts all exit nonzero. The tamper leg corrupts the
// remote tenant through the (daemon-armed) tamper endpoint and then
// demands that remote verification FAIL — detection over the wire.
func runRemote(base, tenant, workload string, workers, ops, batch, maxLen int,
	writeFrac float64, seed uint64, tamper int, verify bool, fr *obs.FlightRecorder) error {

	c, err := client.Dial(base, tenant)
	if err != nil {
		return err
	}
	defer c.Close()
	info := c.Info()
	if info.Failed {
		return fmt.Errorf("tenant %s refused service (recovery violation)", tenant)
	}
	stripe := c.Span() / uint64(workers)
	if stripe <= uint64(maxLen) {
		return fmt.Errorf("stripe %d too small for %dB operations; fewer workers or a larger tenant", stripe, maxLen)
	}
	fr.Record(obs.EvRunStart, -1, 0, fmt.Sprintf("remote=%s tenant=%s scheme=%s shards=%d workers=%d ops=%d workload=%s",
		base, tenant, info.Scheme, info.Shards, workers, ops, workload))

	// Zero the tenant before the workload. The per-worker mirrors start
	// zeroed; a local run always begins on a fresh store, but a remote
	// tenant may carry bytes from an earlier run, which would make every
	// mirror check a false mismatch.
	if err := zeroRemote(c); err != nil {
		return fmt.Errorf("resetting tenant %s: %w", tenant, err)
	}

	var failed bool
	start := time.Now()
	if !runConcurrent(remoteTarget{c}, workload, workers, ops, batch, maxLen, writeFrac, seed) {
		failed = true
	}
	elapsed := time.Since(start).Seconds()

	if tamper >= 0 {
		if tamper >= info.Shards {
			return fmt.Errorf("tenant %s has %d shards, cannot tamper shard %d", tenant, info.Shards, tamper)
		}
		if err := c.Tamper(tamper, 0, 0xFF); err != nil {
			return fmt.Errorf("remote tamper: %w", err)
		}
		fr.Record(obs.EvTamper, tamper, 0, "injected corruption via the tamper endpoint")
	}
	if verify && !failed {
		if err := c.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: remote verification failed:", err)
			failed = true
		}
	}

	totalOps := uint64(workers) * uint64(ops)
	fmt.Printf("loadgen: remote=%s tenant=%s scheme=%s workload=%s shards=%d workers=%d ops=%d elapsed=%.3fs\n",
		base, tenant, info.Scheme, workload, info.Shards, workers, totalOps, elapsed)
	fmt.Printf("loadgen: ops_per_sec=%.1f\n", float64(totalOps)/elapsed)
	fr.Record(obs.EvRunEnd, -1, 0, fmt.Sprintf("remote failed=%t", failed))
	if failed {
		return errFailed
	}
	return nil
}

// zeroRemote writes zeros over the tenant's whole span in batched chunks
// sized to stay under the service's default batch limits.
func zeroRemote(c *client.Client) error {
	const chunk = 256 << 10
	zeros := make([]byte, chunk)
	b := c.NewBatch()
	pending := 0
	for off := uint64(0); off < c.Span(); off += chunk {
		n := uint64(chunk)
		if off+n > c.Span() {
			n = c.Span() - off
		}
		b.Store(off, zeros[:n])
		if pending++; pending == 16 {
			if err := b.Wait(); err != nil {
				return err
			}
			pending = 0
		}
	}
	return b.Wait()
}

// persistEvent adapts persist's protocol hook to the flight recorder;
// persistence events are store-wide, not shard-attributed. Returns nil
// when the recorder is disabled so persist skips the calls entirely.
func persistEvent(fr *obs.FlightRecorder) func(kind string, epoch uint64, detail string) {
	if fr == nil {
		return nil
	}
	return func(kind string, epoch uint64, detail string) { fr.Record(kind, -1, epoch, detail) }
}

// captureTrace returns the /trace capture closure: each shard's trace
// tail is copied on that shard's worker goroutine (or inline once the
// store is closed and the traces quiescent). nil when no recorders are
// attached — the endpoint then explains how to enable tracing.
func captureTrace(s *shard.Store, recs []*telemetry.Recorder) func(uint64) ([]*telemetry.Trace, error) {
	if recs == nil {
		return nil
	}
	return func(cycles uint64) ([]*telemetry.Trace, error) {
		out := make([]*telemetry.Trace, len(recs))
		for i := range recs {
			i := i
			s.WithShard(i, func(*core.Machine) { out[i] = recs[i].Trace.Tail(cycles) })
		}
		return out, nil
	}
}

// persistObs makes persistence counters visible to the live sampler
// without racing the checkpoint path: recovery stats are noted once at
// startup, and the checkpoint store's counters are snapshotted (on the
// goroutine driving the rounds) after every checkpoint attempt.
type persistObs struct {
	mu    sync.Mutex
	recov persist.Stats
	ckpt  persist.Stats
}

func (p *persistObs) noteRecovery(rec *persist.Recovery) {
	p.mu.Lock()
	p.recov.NoteRecovery(rec)
	p.mu.Unlock()
}

func (p *persistObs) setCkpt(st persist.Stats) {
	p.mu.Lock()
	p.ckpt = st
	p.mu.Unlock()
}

// fill publishes both halves into reg; recovery and checkpoint counters
// are disjoint, so Adding them into the same namespace never
// double-counts.
func (p *persistObs) fill(reg *telemetry.Registry) {
	p.mu.Lock()
	p.recov.Fill(reg)
	p.ckpt.Fill(reg)
	p.mu.Unlock()
}

// runConcurrent is the fully concurrent traffic phase: one goroutine per
// worker, mirror-checked reads, no persistence. The target may be the
// in-process store or a remote tenant — the workload, mirrors and
// pass/fail verdict are identical either way. Returns true on success.
func runConcurrent(s target, workload string, workers, ops, batch, maxLen int, writeFrac float64, seed uint64) bool {
	span := s.Span()
	stripe := span / uint64(workers)
	type mismatch struct {
		off  uint64
		err  error
		text string
	}
	results := make(chan mismatch, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			base := uint64(w) * stripe
			mirror := make([]byte, stripe)
			gen, err := newOpGen(workload, int64(seed)<<8|int64(w), stripe, maxLen, writeFrac)
			if err != nil {
				results <- mismatch{err: err}
				return
			}
			type pending struct {
				off  uint64
				got  []byte
				want []byte
			}
			b := s.NewBatch()
			var reads []pending
			collect := func() *mismatch {
				if err := b.Wait(); err != nil {
					return &mismatch{err: err}
				}
				for _, r := range reads {
					for i := range r.got {
						if r.got[i] != r.want[i] {
							return &mismatch{off: r.off + uint64(i),
								text: fmt.Sprintf("read %#x, mirror holds %#x", r.got[i], r.want[i])}
						}
					}
				}
				reads = reads[:0]
				return nil
			}
			for op := 0; op < ops; op++ {
				off, length, write := gen.next()
				if write {
					p := make([]byte, length)
					gen.rng.Read(p)
					b.Store(base+off, p)
					copy(mirror[off:], p)
				} else {
					// The expected bytes are snapshotted at submit time:
					// per-shard FIFO order makes earlier writes to the
					// same addresses visible to this read.
					r := pending{off: base + off, got: make([]byte, length),
						want: append([]byte(nil), mirror[off:off+uint64(length)]...)}
					b.Load(r.off, r.got)
					reads = append(reads, r)
				}
				if (op+1)%batch == 0 {
					if m := collect(); m != nil {
						results <- *m
						return
					}
				}
			}
			if m := collect(); m != nil {
				results <- *m
				return
			}
			results <- mismatch{}
		}()
	}
	ok := true
	for w := 0; w < workers; w++ {
		m := <-results
		switch {
		case m.err != nil:
			fmt.Fprintln(os.Stderr, "loadgen: worker error:", m.err)
			ok = false
		case m.text != "":
			fmt.Fprintf(os.Stderr, "loadgen: MISMATCH at offset %d (shard %d): %s\n",
				m.off, s.ShardFor(m.off), m.text)
			ok = false
		}
	}
	return ok
}

// runPersistent is the checkpointing traffic phase. Workers advance in
// lockstep rounds of ckptEvery ops each; between rounds the store
// checkpoints through internal/persist (a checkpoint is a quiesced commit
// point, so rounds are driven serially from this goroutine — persistence
// runs trade worker parallelism for a deterministic epoch schedule).
// After a -restart recovery, mirrors are seeded from the recovered bytes.
func runPersistent(s *shard.Store, scfg shard.Config, dir, anchor, workload string,
	workers, ops, ckptEvery, batch, maxLen int, writeFrac float64, seed uint64,
	killAfter int, killStage, policy string, restarted bool,
	fr *obs.FlightRecorder, pobs *persistObs) error {

	span := s.Span()
	stripe := span / uint64(workers)
	if ckptEvery < 1 {
		return fmt.Errorf("checkpoint-every must be positive")
	}

	var ffs *persist.FaultFS
	popts := persist.Options{Dir: dir, AnchorPath: anchor, Policy: policy, OnEvent: persistEvent(fr)}
	if killAfter > 0 {
		ffs = persist.NewFaultFS(nil)
		popts.FS = ffs
		// Campaign runs should not sleep through real backoff.
		popts.Retry = persist.RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	}
	st, err := persist.Open(popts)
	if err != nil {
		return err
	}
	defer st.Close()

	mirrors := make([][]byte, workers)
	gens := make([]*opGen, workers)
	for w := range mirrors {
		mirrors[w] = make([]byte, stripe)
		gen, err := newOpGen(workload, int64(seed)<<8|int64(w), stripe, maxLen, writeFrac)
		if err != nil {
			return err
		}
		gens[w] = gen
		if restarted {
			// The recovered store IS the ground truth now; seed the
			// mirror from it so read checks validate against restored
			// state.
			if err := s.LoadBytes(uint64(w)*stripe, mirrors[w]); err != nil {
				return fmt.Errorf("seeding mirror from recovered shard state: %w", err)
			}
		}
	}

	checkpoints := 0
	for done := 0; done < ops; done += ckptEvery {
		round := ckptEvery
		if done+round > ops {
			round = ops - done
		}
		for w := 0; w < workers; w++ {
			if err := persistRound(s, gens[w], mirrors[w], uint64(w)*stripe, round, batch); err != nil {
				return err
			}
		}
		checkpoints++
		if ffs != nil && checkpoints == killAfter {
			ffs.Kill(persist.KillRule{Stage: killStage})
		}
		epoch, err := st.Checkpoint(persist.StoreSource{S: s})
		pobs.setCkpt(st.Stats())
		if err != nil {
			if ffs != nil && ffs.Killed() {
				fr.Record(obs.EvKill, -1, st.Epoch(), fmt.Sprintf("died at stage %s during checkpoint %d", killStage, checkpoints))
				return fmt.Errorf("checkpoint %d: %w", checkpoints, errKilled)
			}
			return fmt.Errorf("checkpoint %d: %w", checkpoints, err)
		}
		fmt.Printf("loadgen: checkpoint %d sealed epoch %d\n", checkpoints, epoch)
	}

	pst := st.Stats()
	fmt.Printf("loadgen: persist checkpoints=%d wal_records=%d bytes_written=%d retries=%d\n",
		pst.Checkpoints, pst.WALRecords, pst.BytesWritten, pst.Retries)
	return nil
}

// persistRound submits one worker's round of mirror-checked operations
// and collects it.
func persistRound(s *shard.Store, gen *opGen, mirror []byte, base uint64, round, batch int) error {
	type pending struct {
		off  uint64
		got  []byte
		want []byte
	}
	b := s.NewBatch()
	var reads []pending
	collect := func() error {
		if err := b.Wait(); err != nil {
			return err
		}
		for _, r := range reads {
			for i := range r.got {
				if r.got[i] != r.want[i] {
					return fmt.Errorf("MISMATCH at offset %d (shard %d): read %#x, mirror holds %#x",
						r.off+uint64(i), s.ShardFor(r.off+uint64(i)), r.got[i], r.want[i])
				}
			}
		}
		reads = reads[:0]
		return nil
	}
	for op := 0; op < round; op++ {
		off, length, write := gen.next()
		if write {
			p := make([]byte, length)
			gen.rng.Read(p)
			b.Store(base+off, p)
			copy(mirror[off:], p)
		} else {
			r := pending{off: base + off, got: make([]byte, length),
				want: append([]byte(nil), mirror[off:off+uint64(length)]...)}
			b.Load(r.off, r.got)
			reads = append(reads, r)
		}
		if (op+1)%batch == 0 {
			if err := collect(); err != nil {
				return err
			}
		}
	}
	return collect()
}
