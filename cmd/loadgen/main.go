// Command loadgen drives mixed read/write traffic through a sharded
// verification store (internal/shard) and reports verified throughput.
// Every read is checked against a per-worker mirror of the bytes the
// store should hold, and the final region is re-verified through the hash
// machinery, so a nonzero exit means a real integrity or consistency
// failure — the CI smoke test relies on that.
//
// Usage:
//
//	loadgen -scheme c -shards 4 -workers 4 -ops 20000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"memverify/internal/cache"
	"memverify/internal/core"
	"memverify/internal/prefetch"
	"memverify/internal/runflags"
	"memverify/internal/shard"
	"memverify/internal/telemetry"
	"memverify/internal/trace"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}

func main() {
	cfg := core.DefaultConfig()
	scheme := flag.String("scheme", "c", "verification scheme: naive, c, m, i")
	shards := flag.Int("shards", 4, "number of independent verification shards")
	workers := flag.Int("workers", 4, "concurrent traffic generators (each owns a disjoint stripe)")
	ops := flag.Int("ops", 20_000, "operations per worker")
	writeFrac := flag.Float64("write-frac", 0.5, "fraction of operations that are writes")
	maxLen := flag.Int("max-len", 256, "maximum bytes per operation")
	batch := flag.Int("batch", 16, "operations in flight per worker before completion is collected")
	queueDepth := flag.Int("queue-depth", 64, "per-shard request queue depth")
	protected := flag.Uint64("protected", 8<<20, "total protected bytes across all shards")
	l2 := flag.Int("l2", 256<<10, "per-shard L2 size in bytes")
	block := flag.Int("block", cfg.L2Block, "L2 block size in bytes")
	chunkBlocks := flag.Int("chunk-blocks", 0, "L2 blocks per hash chunk (default 1, or 2 for m/i)")
	hashmode := flag.String("hashmode", "full", "digest execution: full, timing, memo")
	alg := flag.String("alg", cfg.HashAlg, "hash algorithm: md5, sha1, fnv128")
	policy := flag.String("policy", "record", "violation policy: record, halt, retry")
	seed := flag.Uint64("seed", 1, "traffic seed")
	tamper := flag.Int("tamper", -1, "corrupt this shard's memory after the traffic phase (expect a nonzero exit)")
	verify := flag.Bool("verify", true, "re-read and verify the whole region after the traffic phase")
	pf := flag.Bool("prefetch", false, "enable the tree-ancestor prefetcher on every shard's machine")
	vcLines := flag.Int("verify-cache", 0, "dedicated verification cache size in L2-block lines per shard (0 = share the L2)")
	vcAssoc := flag.Int("verify-assoc", 0, "dedicated verification cache associativity (0 = the L2's)")
	spec := flag.Bool("speculative", false, "run every shard's machine with the speculative verification pipeline; batch Waits become epoch barriers")
	specWindow := flag.Int("spec-window", 0, "max in-flight speculative checks per shard (0 = default)")
	rf := runflags.Add()
	flag.Parse()

	stopProf, err := rf.StartProfiling()
	if err != nil {
		fail(err)
	}
	defer stopProf()

	cfg.Scheme = core.Scheme(*scheme)
	cfg.Benchmark = trace.Uniform("loadgen", 32<<10)
	cfg.Benchmark.CodeSet = 4 << 10
	cfg.ProtectedBytes = *protected
	cfg.L2Size = *l2
	cfg.L2Block = *block
	cfg.HashMode = *hashmode
	cfg.HashAlg = *alg
	cfg.ViolationPolicy = *policy
	cfg.Functional = true
	cfg.Seed = *seed
	switch {
	case *chunkBlocks > 0:
		cfg.ChunkBlocks = *chunkBlocks
	case cfg.Scheme == core.SchemeMulti || cfg.Scheme == core.SchemeIncr:
		cfg.ChunkBlocks = 2
	default:
		cfg.ChunkBlocks = 1
	}
	if *pf {
		cfg.Prefetch = prefetch.DefaultConfig()
		cfg.Prefetch.Enabled = true
	}
	cfg.VerifyCacheLines = *vcLines
	cfg.VerifyCacheAssoc = *vcAssoc
	cfg.Speculative = *spec
	cfg.SpecWindow = *specWindow

	recs := rf.NewRecorders(*shards)
	scfg := shard.Config{Machine: cfg, Shards: *shards, QueueDepth: *queueDepth, Recorders: recs}
	s, err := shard.New(scfg)
	if err != nil {
		fail(err)
	}

	span := s.Span()
	stripe := span / uint64(*workers)
	if *workers < 1 || *ops < 1 || *batch < 1 || *maxLen < 1 {
		fail(fmt.Errorf("workers, ops, batch and max-len must be positive"))
	}
	if stripe <= uint64(*maxLen) {
		fail(fmt.Errorf("stripe %d too small for %dB operations; fewer workers or more protected bytes", stripe, *maxLen))
	}

	type mismatch struct {
		off  uint64
		err  error
		text string
	}
	results := make(chan mismatch, *workers)
	start := time.Now()
	for w := 0; w < *workers; w++ {
		w := w
		go func() {
			base := uint64(w) * stripe
			mirror := make([]byte, stripe)
			rng := rand.New(rand.NewSource(int64(*seed)<<8 | int64(w)))
			type pending struct {
				off  uint64
				got  []byte
				want []byte
			}
			b := s.NewBatch()
			var reads []pending
			collect := func() *mismatch {
				if err := b.Wait(); err != nil {
					return &mismatch{err: err}
				}
				for _, r := range reads {
					for i := range r.got {
						if r.got[i] != r.want[i] {
							return &mismatch{off: r.off + uint64(i),
								text: fmt.Sprintf("read %#x, mirror holds %#x", r.got[i], r.want[i])}
						}
					}
				}
				reads = reads[:0]
				return nil
			}
			for op := 0; op < *ops; op++ {
				length := 1 + rng.Intn(*maxLen)
				off := rng.Uint64() % (stripe - uint64(length))
				if rng.Float64() < *writeFrac {
					p := make([]byte, length)
					rng.Read(p)
					b.Store(base+off, p)
					copy(mirror[off:], p)
				} else {
					// The expected bytes are snapshotted at submit time:
					// per-shard FIFO order makes earlier writes to the
					// same addresses visible to this read.
					r := pending{off: base + off, got: make([]byte, length),
						want: append([]byte(nil), mirror[off:off+uint64(length)]...)}
					b.Load(r.off, r.got)
					reads = append(reads, r)
				}
				if (op+1)%*batch == 0 {
					if m := collect(); m != nil {
						results <- *m
						return
					}
				}
			}
			if m := collect(); m != nil {
				results <- *m
				return
			}
			results <- mismatch{}
		}()
	}
	failed := false
	for w := 0; w < *workers; w++ {
		m := <-results
		switch {
		case m.err != nil:
			fmt.Fprintln(os.Stderr, "loadgen: worker error:", m.err)
			failed = true
		case m.text != "":
			fmt.Fprintf(os.Stderr, "loadgen: MISMATCH at offset %d (shard %d): %s\n",
				m.off, s.ShardFor(m.off), m.text)
			failed = true
		}
	}
	trafficElapsed := time.Since(start)

	if *tamper >= 0 && *tamper < s.Shards() {
		s.WithShard(*tamper, func(m *core.Machine) {
			m.EvictProtected()
			m.Adversary().Corrupt(m.ProgAddr(0), 0xFF)
		})
	}
	if *verify && !failed {
		if err := s.VerifyAll(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: final verification failed:", err)
			failed = true
		}
	}
	for _, v := range s.Violations() {
		fmt.Fprintf(os.Stderr, "loadgen: VIOLATION on shard %d: %v\n", v.Shard, v.Err)
		failed = true
	}

	s.Close()
	agg := s.Metrics()
	if reg := rf.NewRegistry(); reg != nil {
		s.FillRegistry(reg)
		if err := rf.WriteMetrics(reg); err != nil {
			fail(err)
		}
	}
	if recs != nil {
		traces := make([]*telemetry.Trace, len(recs))
		for i, r := range recs {
			traces[i] = r.Trace
		}
		if err := rf.WriteTrace(traces...); err != nil {
			fail(err)
		}
	}

	sec := trafficElapsed.Seconds()
	fmt.Printf("loadgen: scheme=%s hashmode=%s shards=%d workers=%d ops=%d bytes=%d elapsed=%.3fs\n",
		*scheme, *hashmode, *shards, *workers, agg.OpsSubmitted, agg.BytesSubmitted, sec)
	fmt.Printf("loadgen: ops_per_sec=%.1f bytes_per_sec=%.1f checks=%d machine_cycles=%d\n",
		float64(agg.OpsSubmitted)/sec, float64(agg.BytesSubmitted)/sec,
		agg.Total.IntegrityStats.Checks, agg.Total.Result.Cycles)
	t := &agg.Total
	if t.VCAccesses > 0 {
		vs := &t.VCStats
		fmt.Printf("loadgen: vc accesses=%d hit_rate=%.4f evictions=%d writebacks=%d\n",
			t.VCAccesses, t.VCHitRate, vs.Evictions[cache.Hash], vs.WriteBacks[cache.Hash])
	}
	if ps := &t.PrefetchStats; ps.Observed > 0 {
		acc := 0.0
		if ps.Issued > 0 {
			acc = float64(ps.Useful) / float64(ps.Issued)
		}
		fmt.Printf("loadgen: prefetch observed=%d predicted=%d issued=%d useful=%d late=%d dropped=%d accuracy=%.4f\n",
			ps.Observed, ps.Predicted, ps.Issued, ps.Useful, ps.Late,
			ps.DroppedResident+ps.DroppedBudget+ps.DroppedBus, acc)
	}
	if *spec {
		sp := &t.Spec
		fmt.Printf("loadgen: spec checks=%d writebacks=%d overlap_cycles=%d window_stalls=%d barriers=%d barrier_wait_cycles=%d coalesced=%d saved_block_reads=%d\n",
			sp.Checks, sp.Writebacks, sp.OverlapCycles, sp.WindowStalls, sp.Barriers, sp.BarrierWaitCycles,
			sp.Coalesced, sp.SavedBlockReads)
	}
	if failed {
		os.Exit(1)
	}
}
