package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memverify/internal/obs"
	"memverify/internal/stats"
	"memverify/internal/telemetry"
)

// goldenRegistry rebuilds the registry testdata/exposition.golden was
// generated from; the golden test pins WriteExposition's output format.
func goldenRegistry() (*telemetry.Registry, map[string]float64) {
	reg := telemetry.NewRegistry()
	reg.Add("shard.ops_submitted", 48000)
	reg.Add("shard.violations", 1)
	reg.Add("integrity.violations", 1)
	reg.Add("persist.checkpoints", 12)
	reg.Add("persist.checkpoint_nanos", 84213991)
	reg.SetGauge("bus.utilization", 0.3125)
	reg.SetGauge("shard.halted_shards", 1)
	reg.SetGauge("l2.resident_lines_data", 16384)
	h := stats.NewHistogram(16, 64, 256, 1024)
	for _, v := range []uint64{3, 17, 17, 90, 300, 2000} {
		h.Observe(v)
	}
	reg.MergeHistogram("spec.pending_depth", h)
	sampler := map[string]float64{
		"ops_per_sec":     137856,
		"ops_per_sec_p50": 120431,
		"ops_per_sec_p99": 140002,
	}
	return reg, sampler
}

func TestGoldenExposition(t *testing.T) {
	reg, sampler := goldenRegistry()
	var buf bytes.Buffer
	if err := obs.WriteExposition(&buf, reg, sampler); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "exposition.golden"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if buf.String() != string(want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}

	sc, err := obs.ValidateExposition(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden exposition does not validate: %v", err)
	}
	if fam, ok := sc.Families["memverify_spec_pending_depth"]; !ok || fam.Type != "histogram" {
		t.Errorf("golden missing histogram family: %+v", sc.Order)
	}
	if fam, ok := sc.Families["memverify_shard_ops_submitted"]; !ok || fam.Type != "counter" {
		t.Errorf("golden missing counter family: %+v", sc.Order)
	}
}

func TestRunValidatesAndComparesFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, reg *telemetry.Registry, sampler map[string]float64) string {
		var buf bytes.Buffer
		if err := obs.WriteExposition(&buf, reg, sampler); err != nil {
			t.Fatalf("WriteExposition: %v", err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	reg, sampler := goldenRegistry()
	first := write("first.prom", reg, sampler)
	if err := run("", "", []string{first}); err != nil {
		t.Fatalf("validate first scrape: %v", err)
	}

	// Counters advance: the -prev comparison must pass.
	reg.Add("shard.ops_submitted", 1000)
	reg.Add("persist.checkpoints", 1)
	second := write("second.prom", reg, sampler)
	if err := run(first, "", []string{second}); err != nil {
		t.Fatalf("monotonic advance rejected: %v", err)
	}

	// A counter moving backwards must fail the -prev gate.
	if err := run(second, "", []string{first}); err == nil {
		t.Fatal("backwards counter accepted")
	} else if !strings.Contains(err.Error(), "memverify_") {
		t.Fatalf("error does not name the offending metric: %v", err)
	}
}

func TestRunRejectsMalformedExposition(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.prom")
	// A sample with no TYPE/HELP metadata is illegal.
	if err := os.WriteFile(bad, []byte("memverify_orphan 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", "", []string{bad}); err == nil {
		t.Fatal("exposition without metadata accepted")
	}
}

func TestRunScrapesURL(t *testing.T) {
	reg, sampler := goldenRegistry()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs.WriteExposition(w, reg, sampler) //nolint:errcheck
	}))
	defer srv.Close()
	if err := run("", srv.URL, nil); err != nil {
		t.Fatalf("URL scrape: %v", err)
	}
}

func TestFetchExitCodes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/down" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write([]byte(`{"status": "x"}`)) //nolint:errcheck
	}))
	defer srv.Close()
	if code := fetch(srv.URL + "/up"); code != 0 {
		t.Errorf("healthy fetch exit code = %d, want 0", code)
	}
	if code := fetch(srv.URL + "/down"); code != 7 {
		t.Errorf("unhealthy fetch exit code = %d, want 7", code)
	}
}
