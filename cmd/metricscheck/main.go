// Command metricscheck validates a Prometheus text exposition — the
// format served by the drivers' -ops-listen /metrics endpoint. It checks
// structural legality (unique metric names, legal characters, HELP/TYPE
// present for every family, well-formed cumulative histograms) and, given
// an earlier scrape of the same process, that counters and histogram
// buckets never move backwards. CI scrapes a live loadgen twice and runs
// the second scrape through -prev to gate the live surface.
//
// Usage:
//
//	metricscheck scrape.prom                 # validate one exposition file
//	metricscheck -url http://127.0.0.1:9090/metrics
//	metricscheck -prev first.prom second.prom  # + monotonicity across scrapes
//	metricscheck -get http://127.0.0.1:9090/healthz  # print body; exit 7 unless HTTP 200
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"memverify/internal/obs"
)

func main() {
	prev := flag.String("prev", "", "earlier exposition file from the same process; counters must not move backwards")
	url := flag.String("url", "", "fetch the exposition from this URL instead of a file argument")
	get := flag.String("get", "", "plain HTTP fetch: print the response body, exit 0 on HTTP 200 and 7 otherwise (CI health polling)")
	flag.Parse()

	if *get != "" {
		os.Exit(fetch(*get))
	}
	if err := run(*prev, *url, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
}

// fetch implements -get: a curl-shaped probe with the status code folded
// into the exit code so shell gates need no output parsing.
func fetch(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		return 7
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body) //nolint:errcheck // best-effort body
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "metricscheck: %s: HTTP %d\n", url, resp.StatusCode)
		return 7
	}
	return 0
}

func run(prevPath, url string, args []string) error {
	var cur *obs.Scrape
	var err error
	switch {
	case url != "":
		if len(args) != 0 {
			return fmt.Errorf("pass either -url or a file argument, not both")
		}
		cur, err = scrapeURL(url)
	case len(args) == 1:
		cur, err = scrapeFile(args[0])
	default:
		return fmt.Errorf("usage: metricscheck [-prev FILE] (-url URL | FILE)")
	}
	if err != nil {
		return err
	}

	if prevPath != "" {
		prev, err := scrapeFile(prevPath)
		if err != nil {
			return fmt.Errorf("prev: %w", err)
		}
		if err := obs.CompareScrapes(prev, cur); err != nil {
			return err
		}
	}

	samples := 0
	for _, fam := range cur.Families {
		samples += len(fam.Samples)
	}
	fmt.Printf("metricscheck: OK (%d families, %d samples)\n", len(cur.Families), samples)
	return nil
}

func scrapeFile(path string) (*obs.Scrape, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc, err := obs.ValidateExposition(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

func scrapeURL(url string) (*obs.Scrape, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	sc, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return sc, nil
}
