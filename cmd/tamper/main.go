// Command tamper demonstrates the adversary model end to end: it runs a
// functional machine under each verification scheme, mounts the attack
// classes of the paper's threat model against external memory, and shows
// which schemes detect which attacks (the base scheme detects none, the
// tree-based schemes all of them).
//
// Usage:
//
//	tamper            # all schemes, all attacks
//	tamper -scheme c  # one scheme
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"memverify/internal/core"
	"memverify/internal/stats"
	"memverify/internal/trace"
)

func machine(scheme core.Scheme) (*core.Machine, error) {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = trace.Uniform("tamper-demo", 256<<10)
	cfg.Benchmark.CodeSet = 16 << 10
	cfg.ProtectedBytes = 1 << 20
	cfg.L2Size = 64 << 10
	cfg.Functional = true
	cfg.HashAlg = "md5"
	if scheme == core.SchemeMulti || scheme == core.SchemeIncr {
		cfg.ChunkBlocks = 2
	}
	return core.NewMachine(cfg)
}

type attack struct {
	name string
	run  func(m *core.Machine) error // returns the detection error, nil if undetected
}

var attacks = []attack{
	{"bit-flip in data", func(m *core.Machine) error {
		if err := m.StoreBytes(0, bytes.Repeat([]byte{0x11}, 64)); err != nil {
			return err
		}
		m.EvictProtected()
		m.Adversary().Corrupt(m.ProgAddr(5), 0x80)
		return m.LoadBytes(0, make([]byte, 64))
	}},
	{"bit-flip in stored hash", func(m *core.Machine) error {
		if err := m.StoreBytes(64, bytes.Repeat([]byte{0x22}, 64)); err != nil {
			return err
		}
		m.EvictProtected()
		slot, ok := m.Layout.HashAddr(m.Layout.ChunkOf(m.ProgAddr(64)))
		if !ok {
			return fmt.Errorf("no stored hash for chunk")
		}
		m.Adversary().Corrupt(slot, 0x01)
		return m.LoadBytes(64, make([]byte, 64))
	}},
	{"replay of stale memory", func(m *core.Machine) error {
		if err := m.StoreBytes(128, bytes.Repeat([]byte{0x01}, 64)); err != nil {
			return err
		}
		m.EvictProtected()
		snap := m.Adversary().Snapshot(0, m.Layout.Size())
		if err := m.StoreBytes(128, bytes.Repeat([]byte{0x02}, 64)); err != nil {
			return err
		}
		m.EvictProtected()
		m.Adversary().Replay(snap)
		defer m.Adversary().StopReplay(snap)
		return m.LoadBytes(128, make([]byte, 64))
	}},
	{"splice one block over another", func(m *core.Machine) error {
		if err := m.StoreBytes(256, bytes.Repeat([]byte{0xAA}, 64)); err != nil {
			return err
		}
		if err := m.StoreBytes(512, bytes.Repeat([]byte{0xBB}, 64)); err != nil {
			return err
		}
		m.EvictProtected()
		m.Adversary().Splice(m.ProgAddr(256), m.ProgAddr(512), 64)
		return m.LoadBytes(256, make([]byte, 64))
	}},
	{"silently dropped write-back", func(m *core.Machine) error {
		if err := m.LoadBytes(1024, make([]byte, 8)); err != nil {
			return err
		}
		m.Adversary().DropWrites(m.ProgAddr(1024), 64)
		if err := m.StoreBytes(1024, bytes.Repeat([]byte{0x5C}, 64)); err != nil {
			return err
		}
		m.EvictProtected()
		return m.LoadBytes(1024, make([]byte, 64))
	}},
}

func main() {
	schemeFlag := flag.String("scheme", "", "run a single scheme: base, naive, c, m, i")
	flag.Parse()

	schemes := []core.Scheme{core.SchemeBase, core.SchemeNaive, core.SchemeCached, core.SchemeMulti, core.SchemeIncr}
	if *schemeFlag != "" {
		schemes = []core.Scheme{core.Scheme(*schemeFlag)}
	}

	table := stats.NewTable("Attack detection by scheme (DETECTED / missed)",
		append([]string{"attack"}, schemeNames(schemes)...)...)
	exitCode := 0
	for _, a := range attacks {
		row := []interface{}{a.name}
		for _, s := range schemes {
			m, err := machine(s)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			detectErr := a.run(m)
			switch {
			case detectErr != nil:
				row = append(row, "DETECTED")
			case s == core.SchemeBase:
				row = append(row, "missed (by design)")
			default:
				row = append(row, "MISSED!")
				exitCode = 1
			}
		}
		table.AddRow(row...)
	}
	fmt.Print(table)
	if exitCode != 0 {
		fmt.Println("\nA protected scheme missed an attack — this is a bug.")
	}
	os.Exit(exitCode)
}

func schemeNames(ss []core.Scheme) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = string(s)
	}
	return out
}
