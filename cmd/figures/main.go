// Command figures regenerates the paper's tables and figures from fresh
// simulations and prints them as aligned text tables.
//
// Usage:
//
//	figures                 # everything, all cores (several minutes)
//	figures -fig3 -n 300000 # just Figure 3 with a larger budget
//	figures -workers 1      # reference serial run (identical output)
package main

import (
	"flag"
	"fmt"
	"os"

	"memverify/internal/core"
	"memverify/internal/figures"
	"memverify/internal/obs"
	"memverify/internal/runflags"
	"memverify/internal/telemetry"
)

func main() {
	n := flag.Uint64("n", 0, "instructions per simulation point (default 200000)")
	warm := flag.Uint64("warmup", 0, "warm-up instructions per point (default 150000)")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = all cores, 1 = serial)")
	rf := runflags.Add()
	verbose := flag.Bool("v", false, "print each run's one-line summary")
	table1 := flag.Bool("table1", false, "print Table 1")
	fig3 := flag.Bool("fig3", false, "print Figure 3 (IPC, 6 cache configs)")
	fig4 := flag.Bool("fig4", false, "print Figure 4 (miss rates)")
	fig5 := flag.Bool("fig5", false, "print Figure 5 (extra accesses, bandwidth)")
	fig6 := flag.Bool("fig6", false, "print Figure 6 (hash throughput)")
	fig7 := flag.Bool("fig7", false, "print Figure 7 (buffer size)")
	fig8 := flag.Bool("fig8", false, "print Figure 8 (m and i schemes)")
	ablations := flag.Bool("ablations", false, "print the ablation studies (verify cache, arity, hash latency, associativity, tree depth)")
	functional := flag.Bool("functional", false, "run every point functionally (real data movement; small protected region)")
	hashmode := flag.String("hashmode", "", "digest execution for functional points: full, timing, memo")
	protected := flag.Uint64("protected", 0, "override the protected-region size in bytes (0 = per-figure default)")
	csvPath := flag.String("csv", "", "also write every run's configuration and metrics to a CSV file")
	progress := flag.Bool("progress", false, "show live sweep progress on stderr: points done, throughput, ETA")
	flag.Parse()

	stopProf, err := rf.StartProfiling()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	p := figures.DefaultParams()
	if *n > 0 {
		p.Instructions = *n
	}
	if *warm > 0 {
		p.Warmup = *warm
	}
	p.Seed = *seed
	p.Workers = *workers
	p.Functional = *functional
	p.HashMode = *hashmode
	p.ProtectedBytes = *protected
	if *verbose {
		p.Progress = os.Stderr
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Fprintln(f, figures.CSVHeader)
		p.Observer = func(cfg core.Config, mt core.Metrics) {
			figures.WriteCSVRow(f, cfg, mt)
		}
	}
	if *progress {
		p.Meter = telemetry.NewMeter(os.Stderr, "sweep")
		defer p.Meter.Finish()
	}
	// Attaching a recorder forces the sweep serial (-workers 1); the
	// figures package handles that when p.Telemetry is non-nil.
	rec := rf.NewRecorder()
	if rec != nil {
		p.Telemetry = rec
	}
	reg := rf.NewRegistry()
	if reg != nil {
		prev := p.Observer
		p.Observer = func(cfg core.Config, mt core.Metrics) {
			if prev != nil {
				prev(cfg, mt)
			}
			core.AccumulateMetrics(reg, &mt)
		}
	}

	// Sweep points run on worker goroutines, so the live scrape surface
	// reads an accumulator each finished point merges into: /metrics shows
	// the sweep-wide counters growing and rate.figures.points_done gives a
	// live points-per-second.
	var lr *obs.LockedRegistry
	fr := rf.NewFlightRecorder()
	defer rf.DumpFlight(fr)
	if rf.OpsEnabled() {
		lr = obs.NewLockedRegistry()
		prev := p.Observer
		p.Observer = func(cfg core.Config, mt core.Metrics) {
			if prev != nil {
				prev(cfg, mt)
			}
			point := telemetry.NewRegistry()
			core.AccumulateMetrics(point, &mt)
			lr.Merge(point)
			lr.Add("figures.points_done", 1)
		}
	}
	srv, serr := rf.StartOps(obs.Options{
		Fill:   lr.Fill,
		Flight: fr,
	})
	if serr != nil {
		fmt.Fprintln(os.Stderr, serr)
		os.Exit(1)
	}
	defer srv.Close()
	fr.Record(obs.EvRunStart, -1, 0, "figures sweep")

	all := !(*table1 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 || *fig8 || *ablations)

	if all || *table1 {
		fmt.Println(p.Table1())
	}
	if all || *fig3 {
		for _, cc := range figures.Fig3Configs {
			fmt.Println(p.Fig3(cc))
		}
	}
	if all || *fig4 {
		fmt.Println(p.Fig4())
	}
	if all || *fig5 {
		fmt.Println(p.Fig5())
	}
	if all || *fig6 {
		fmt.Println(p.Fig6())
	}
	if all || *fig7 {
		fmt.Println(p.Fig7())
	}
	if all || *fig8 {
		fmt.Println(p.Fig8())
	}
	if *ablations {
		fmt.Println(p.AblationVerifyCache())
		fmt.Println(p.AblationArity())
		fmt.Println(p.AblationHashLatency())
		fmt.Println(p.AblationAssoc())
		fmt.Println(p.AblationTreeDepth())
	}

	fr.Record(obs.EvRunEnd, -1, 0, "figures sweep complete")
	if srv != nil {
		final := telemetry.NewRegistry()
		lr.Fill(final)
		srv.Publish(final)
	}

	if rec != nil {
		if err := rf.WriteTrace(rec.Trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if reg != nil {
		rec.FillRegistry(reg)
		if err := rf.WriteMetrics(reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
