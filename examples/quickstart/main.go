// Quickstart: simulate one benchmark under the paper's three headline
// schemes and print the cost of memory integrity verification.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"memverify/internal/core"
	"memverify/internal/trace"
)

func main() {
	bench, _ := trace.ByName("swim")
	fmt.Printf("Simulating %s (Table 1 machine, 1MB L2, 64B blocks)\n\n", bench.Name)

	var baseIPC float64
	for _, scheme := range []core.Scheme{core.SchemeBase, core.SchemeCached, core.SchemeNaive} {
		cfg := core.DefaultConfig() // the paper's architectural parameters
		cfg.Scheme = scheme
		cfg.Benchmark = bench
		cfg.Instructions = 300_000
		cfg.Warmup = 200_000

		m, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if scheme == core.SchemeBase {
			baseIPC = m.IPC
		}
		fmt.Printf("%-6s IPC %.3f (%.0f%% of base)  L2 data miss %5.2f%%  extra reads/miss %.2f  bus util %4.1f%%\n",
			scheme, m.IPC, 100*m.IPC/baseIPC, 100*m.DataMissRate, m.ExtraPerMiss, 100*m.BusUtilization)
	}

	fmt.Println("\nThe cached hash tree (scheme c) verifies all of memory for a few")
	fmt.Println("percent; the naive tree costs an order of magnitude. Run")
	fmt.Println("`go run ./cmd/figures` to regenerate every figure of the paper.")
}
