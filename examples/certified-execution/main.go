// Certified execution (§4.1): Alice rents Bob's machine. The secure
// processor derives a program-bound one-time key, runs Alice's
// computation over verified memory, and signs the result. Because every
// memory read was checked against the hash tree, the signature certifies
// that neither the computation nor its memory was tampered with.
//
// The demo runs the protocol twice: once honestly, and once with Bob
// attacking the memory bus — the attack is detected before any signature
// is produced.
//
//	go run ./examples/certified-execution
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"memverify/internal/core"
	"memverify/internal/hashalg"
	"memverify/internal/lamport"
	"memverify/internal/trace"
)

// aliceProgram is the computation Alice ships: sum a table of values held
// in (untrusted, verified) external memory. Every load goes through the
// machine's L1/L2/hash-tree path.
func aliceProgram(m *core.Machine) (uint64, error) {
	const entries = 4096
	// Initialize the table.
	for i := 0; i < entries; i++ {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(i*3+1))
		if err := m.StoreBytes(uint64(i*8), buf[:]); err != nil {
			return 0, err
		}
	}
	// The working set exceeds the L2, so summing it re-reads verified
	// memory.
	var sum uint64
	for i := 0; i < entries; i++ {
		var buf [8]byte
		if err := m.LoadBytes(uint64(i*8), buf[:]); err != nil {
			return 0, err
		}
		sum += binary.LittleEndian.Uint64(buf[:])
	}
	return sum, nil
}

// runOnBobsMachine executes the protocol and returns the signed result.
func runOnBobsMachine(attack bool) (result uint64, signature []byte, pubKey []byte, err error) {
	cfg := core.DefaultConfig()
	cfg.Scheme = core.SchemeCached
	cfg.Benchmark = trace.Uniform("alice", 64<<10)
	cfg.Benchmark.CodeSet = 16 << 10
	cfg.ProtectedBytes = 1 << 20
	cfg.L2Size = 16 << 10 // small, to force verified re-reads
	cfg.Functional = true
	cfg.HashAlg = "sha1"
	m, err := core.NewMachine(cfg)
	if err != nil {
		return 0, nil, nil, err
	}

	// The processor combines its unique secret with Alice's program hash
	// to derive the program-bound signing key (its public half is what
	// Alice will check against the manufacturer's records).
	processorSecret := []byte("PUF-derived-processor-secret")
	programHash := hashalg.SHA1{}.Sum([]byte("alice-program-v1"))
	key := lamport.GenerateKey(append(processorSecret, programHash...))

	if attack {
		// Bob tampers with the bus mid-computation: stale data replay.
		adv := m.Adversary()
		snap := adv.Snapshot(m.ProgAddr(0), 4096)
		defer adv.StopReplay(snap)
		// Let the program write fresh values, then serve the stale ones.
		adv.Replay(snap)
	}

	result, err = aliceProgram(m)
	if err != nil {
		// Integrity violation: the processor destroys the program's key
		// rather than signing (§5.7.2 step 5 / §5.8 barrier).
		return 0, nil, key.Public().Marshal(), err
	}
	// Cryptographic barrier: all checks must complete before the
	// signature leaves the chip (§5.8).
	m.Flush()
	if m.Sys.First != nil {
		return 0, nil, key.Public().Marshal(), m.Sys.First
	}

	var msg [8]byte
	binary.LittleEndian.PutUint64(msg[:], result)
	sig, err := key.Sign(msg[:])
	if err != nil {
		return 0, nil, nil, err
	}
	return result, sig.Marshal(), key.Public().Marshal(), nil
}

// aliceChecks verifies Bob's reply.
func aliceChecks(result uint64, signature, pubKey []byte) bool {
	pk, err := lamport.UnmarshalPublicKey(pubKey)
	if err != nil {
		return false
	}
	sig, err := lamport.UnmarshalSignature(signature)
	if err != nil {
		return false
	}
	var msg [8]byte
	binary.LittleEndian.PutUint64(msg[:], result)
	return pk.Verify(msg[:], sig)
}

func main() {
	fmt.Println("— Honest run —")
	result, sig, pub, err := runOnBobsMachine(false)
	if err != nil {
		log.Fatalf("honest run failed: %v", err)
	}
	fmt.Printf("Bob returns result %d with a %d-byte certificate\n", result, len(sig))
	if aliceChecks(result, sig, pub) {
		fmt.Println("Alice: certificate verifies — the computation is certified.")
	} else {
		log.Fatal("Alice: certificate rejected (bug)")
	}
	// Sanity: the result is the closed form of the sum.
	want := uint64(0)
	for i := 0; i < 4096; i++ {
		want += uint64(i*3 + 1)
	}
	if result != want {
		log.Fatalf("wrong sum: %d != %d", result, want)
	}

	fmt.Println("\n— Bob attacks the memory bus (stale-data replay) —")
	_, sig2, _, err := runOnBobsMachine(true)
	if err != nil {
		fmt.Printf("Processor detected tampering before signing: %v\n", err)
		fmt.Println("No certificate was produced; Alice rejects the job.")
	} else if len(sig2) != 0 {
		log.Fatal("attack went unnoticed and a certificate was issued (bug)")
	}

	// A forged certificate fails Alice's check.
	fmt.Println("\n— Bob forges a result without the key —")
	forged := make([]byte, lamport.Bits*lamport.HashSize)
	if aliceChecks(12345, forged, pub) {
		log.Fatal("forged certificate accepted (bug)")
	}
	fmt.Println("Alice: forged certificate rejected.")
}
