// DMA and secure-mode initialization (§5.7): devices write memory behind
// the processor's back, so DMA lands in an *unprotected* region that the
// tree does not cover; the program inspects it there (ReadWithoutChecking),
// then copies it into protected memory, after which the hash tree
// guarantees its integrity. The demo also walks the paper's boot
// procedure: hash-for-writes-only → touch every chunk → flush → arm
// exceptions.
//
//	go run ./examples/dma-init
package main

import (
	"bytes"
	"fmt"
	"log"

	"memverify/internal/core"
	"memverify/internal/integrity"
	"memverify/internal/trace"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Scheme = core.SchemeCached
	cfg.Benchmark = trace.Uniform("dma-demo", 32<<10)
	cfg.Benchmark.CodeSet = 16 << 10
	cfg.ProtectedBytes = 256 << 10
	cfg.L2Size = 16 << 10
	cfg.Functional = true
	cfg.HashAlg = "md5"
	m, err := core.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// --- The paper's initialization procedure (§5.7.2) ---------------
	// The machine above was initialized the fast way; rerun secure-mode
	// entry the paper's way to show it works end to end:
	//   1. hashing on for writes, exceptions off; 2. touch every chunk;
	//   3. flush the cache (cascading tree computation); 4. arm checks.
	cycles, err := integrity.InitializeByTouch(m.Engine, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("secure mode entered: %d chunks covered, boot procedure took %d cycles\n",
		m.Layout.TotalChunks, cycles)

	// --- A NIC DMAs a packet into the unprotected region --------------
	packet := bytes.Repeat([]byte("payload!"), 32) // 256 bytes
	dmaBase := m.UnprotectedBase()
	m.Sys.Mem.Write(dmaBase, packet) // the device writes memory directly
	fmt.Printf("NIC wrote %d bytes at %#x (beyond the tree's %#x)\n",
		len(packet), dmaBase, m.Layout.Size())

	// --- The processor inspects it without checking -------------------
	// Reads beyond the protected region use the ReadWithoutChecking path:
	// no verification, no exception — the data has an untrusted origin.
	inspect := make([]byte, len(packet))
	now := uint64(cycles)
	for i := range inspect {
		b := readUnprotected(m, dmaBase+uint64(i), &now)
		inspect[i] = b
	}
	if !bytes.Equal(inspect, packet) {
		log.Fatal("unprotected read mismatch")
	}
	fmt.Println("processor read the packet via ReadWithoutChecking (no exceptions)")

	// --- Copy into protected memory, then it is covered ---------------
	if err := m.StoreBytes(0, inspect); err != nil {
		log.Fatal(err)
	}
	m.Flush()
	fmt.Println("packet copied into protected memory and flushed through the tree")

	// The unprotected original can be corrupted silently...
	m.Adversary().Corrupt(dmaBase, 0xFF)
	m.L2.Invalidate(dmaBase) // drop the cached copy; re-read memory
	if got := readUnprotected(m, dmaBase, &now); got == packet[0] {
		log.Fatal("corruption of DMA region had no effect?")
	}
	fmt.Println("adversary corrupted the DMA region: no exception (by design)")

	// ...but the protected copy cannot.
	dropCaches(m)
	m.Adversary().Corrupt(m.ProgAddr(0), 0xFF)
	if err := m.LoadBytes(0, make([]byte, 8)); err != nil {
		fmt.Printf("adversary corrupted the protected copy: %v\n", err)
	} else {
		log.Fatal("protected copy corruption went undetected (bug)")
	}
}

// readUnprotected issues a processor load to the unprotected region
// through the normal hierarchy path.
func readUnprotected(m *core.Machine, addr uint64, now *uint64) byte {
	ba := addr &^ uint64(m.Cfg.L2Block-1)
	ln := m.L2.Peek(ba)
	if ln == nil {
		*now = m.Engine.ReadBlock(*now, ba)
		ln = m.L2.Peek(ba)
		if ln == nil {
			log.Fatal("unprotected fill failed")
		}
	}
	return ln.Data[addr-ba]
}

// dropCaches invalidates every protected block so the next load re-reads
// memory.
func dropCaches(m *core.Machine) {
	for ba := uint64(0); ba < m.Layout.Size(); ba += uint64(m.Cfg.L2Block) {
		m.L2.Invalidate(ba)
	}
}
