// The XOM replay attack (§4.4): per-block MACs — even address-bound ones —
// cannot tell whether memory returned *fresh* data, only whether it
// returned data the same program once stored there. The paper's example is
// a loop whose counter gets swapped to memory: by replaying the counter's
// old value, an attacker makes an output loop run past its bound and leak
// adjacent secrets.
//
// This demo builds that scenario twice:
//
//  1. against an XOM-like memory (each block protected by an address-bound
//     keyed MAC, no tree): every replayed read verifies and the loop leaks
//     data beyond its bound;
//
//  2. against the paper's hash-tree machine: the first replayed read
//     raises an integrity violation.
//
//     go run ./examples/replay-attack
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"memverify/internal/core"
	"memverify/internal/hashalg"
	"memverify/internal/mem"
	"memverify/internal/trace"
)

// xomMemory is a minimal XOM-style protected memory: each 64-byte block
// is stored with MAC = H(key ‖ address ‖ data). The address binding stops
// copy/splice attacks; nothing stops replay of an old (data, MAC) pair.
type xomMemory struct {
	data *mem.Sparse
	macs map[uint64][]byte // block addr -> MAC of the *current* contents
	key  []byte
	alg  hashalg.Algorithm
}

func newXOM() *xomMemory {
	return &xomMemory{
		data: mem.NewSparse(),
		macs: make(map[uint64][]byte),
		key:  []byte("xom-compartment-key"),
		alg:  hashalg.MD5{},
	}
}

func (x *xomMemory) mac(addr uint64, block []byte) []byte {
	buf := make([]byte, 0, len(x.key)+8+len(block))
	buf = append(buf, x.key...)
	var a [8]byte
	binary.LittleEndian.PutUint64(a[:], addr)
	buf = append(buf, a[:]...)
	buf = append(buf, block...)
	return x.alg.Sum(buf)
}

func (x *xomMemory) write(addr uint64, block []byte) {
	x.data.Write(addr, block)
	x.macs[addr] = x.mac(addr, block)
}

// read returns the block and whether its MAC verified.
func (x *xomMemory) read(addr uint64) ([]byte, bool) {
	block := make([]byte, 64)
	x.data.Read(addr, block)
	return block, bytes.Equal(x.macs[addr], x.mac(addr, block))
}

// leakyLoopXOM runs the paper's code fragment over XOM memory while the
// adversary replays the loop counter. outputData models copying data out
// of the secure compartment.
func leakyLoopXOM() (leaked []uint64) {
	x := newXOM()

	// data[0..size) are public outputs; data[size..) are secrets that must
	// never leave the compartment.
	const size, secretStart, blocks = 4, 4, 16
	for i := 0; i < blocks; i++ {
		block := make([]byte, 64)
		for j := 0; j < 8; j++ {
			binary.LittleEndian.PutUint64(block[j*8:], uint64(i*8+j)|0xD000)
		}
		x.write(uint64(0x1000+i*64), block)
	}

	// The loop counter i lives in its own cache line and gets swapped to
	// memory each iteration (the attacker runs the victim single-stepped,
	// §4.4). The adversary records (counter=1, MAC) from iteration one.
	const counterAddr = 0x0
	writeCounter := func(v uint64) {
		blk := make([]byte, 64)
		binary.LittleEndian.PutUint64(blk, v)
		x.write(counterAddr, blk)
	}
	writeCounter(0)

	var replayData []byte
	var replayMAC []byte

	// `data` is the walking pointer of outputdata(*data++); it lives in a
	// register (or its own cache line) and is NOT replayed — only the loop
	// counter i is. That is exactly the paper's scenario.
	dataPtr := uint64(0)
	for iter := 0; iter < 12; iter++ { // the source loop bound is size=4!
		blk, ok := x.read(counterAddr)
		if !ok {
			log.Fatal("XOM flagged an honest-looking read (bug in demo)")
		}
		i := binary.LittleEndian.Uint64(blk)
		if i >= size {
			break // loop exit condition — which the replay prevents
		}
		// outputdata(*data++): one value leaves the compartment.
		dblk, ok := x.read(uint64(0x1000 + (dataPtr/8)*64))
		if !ok {
			log.Fatal("data MAC failed unexpectedly")
		}
		leaked = append(leaked, binary.LittleEndian.Uint64(dblk[(dataPtr%8)*8:]))
		dataPtr++

		// i++ followed by swap-out.
		writeCounter(i + 1)

		// The adversary recorded (i=1, MAC) during an early iteration...
		if iter == 0 {
			replayData, _ = x.read(counterAddr)
			replayMAC = x.macs[counterAddr]
		}
		// ...and replaces every later swap-out with it, so i never
		// reaches the bound.
		if replayData != nil {
			x.data.Write(counterAddr, replayData)
			x.macs[counterAddr] = replayMAC
		}
	}
	return leaked
}

// replayAgainstTree mounts the same counter replay against the hash-tree
// machine and returns the detection error.
func replayAgainstTree() error {
	cfg := core.DefaultConfig()
	cfg.Scheme = core.SchemeCached
	cfg.Benchmark = trace.Uniform("victim", 64<<10)
	cfg.Benchmark.CodeSet = 16 << 10
	cfg.ProtectedBytes = 1 << 20
	cfg.L2Size = 16 << 10
	cfg.Functional = true
	cfg.HashAlg = "md5"
	m, err := core.NewMachine(cfg)
	if err != nil {
		return err
	}

	counter := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, v)
		return b
	}
	if err := m.StoreBytes(0, counter(1)); err != nil {
		return err
	}
	m.Flush() // counter value 1 goes to memory (with its hash)

	// Adversary snapshots the counter's block and its whole neighbourhood.
	adv := m.Adversary()
	snap := adv.Snapshot(0, m.Layout.Size())

	// The loop increments the counter; write-back updates the tree.
	if err := m.StoreBytes(0, counter(4)); err != nil {
		return err
	}
	m.Flush()
	for ba := uint64(0); ba < m.Layout.Size(); ba += uint64(m.Cfg.L2Block) {
		m.L2.Invalidate(ba)
	}

	// Replay the old counter (and, generously, all of old memory).
	adv.Replay(snap)
	got := make([]byte, 8)
	return m.LoadBytes(0, got) // must fail: the root register moved on
}

func main() {
	fmt.Println("— XOM-like per-block MACs (no freshness) —")
	leaked := leakyLoopXOM()
	fmt.Printf("loop bound was 4, but %d values left the compartment: %x\n", len(leaked), leaked)
	if len(leaked) <= 4 {
		log.Fatal("replay failed to extend the loop (demo bug)")
	}
	fmt.Printf("values 5..%d are secrets leaked by replaying the stale counter\n\n", len(leaked))

	fmt.Println("— The same replay against the hash tree —")
	if err := replayAgainstTree(); err != nil {
		fmt.Printf("detected immediately: %v\n", err)
	} else {
		log.Fatal("hash tree missed the replay (bug)")
	}
	fmt.Println("\nFreshness comes from the on-chip root: stale data cannot re-enter.")
}
