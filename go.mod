module memverify

go 1.22
