#!/usr/bin/env bash
# Measures what tree-ancestor prefetching and the dedicated verification
# cache buy on the tree-walk-bound configuration via BenchmarkPrefetch:
# simulated throughput (the stream-IPC metric — instructions per simulated
# cycle, i.e. simulated ops/sec at the fixed 1 GHz clock) for prefetch
# off/on under a shared L2 and under a dedicated verification cache,
# written to BENCH_prefetch.json. The on/off ratio per cache arrangement
# is the headline speedup; ci.sh gates the shared ratio at >= 1.10.
# Knobs: BENCHTIME (iterations/point), OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-10x}
OUT=${OUT:-BENCH_prefetch.json}

raw=$(go test -run '^$' -bench BenchmarkPrefetch -benchtime "$BENCHTIME" .)

# "BenchmarkPrefetch/on/shared-8  10  4158395 ns/op ... 1.007 stream-IPC ..."
# → "on/shared 4158395 1.007"
parsed=$(printf '%s\n' "$raw" | awk '
  /^BenchmarkPrefetch\// {
    split($1, path, "/"); sub(/-[0-9]+$/, "", path[3])
    ipc = "?"
    for (i = 2; i <= NF; i++) if ($i == "stream-IPC") ipc = $(i - 1)
    print path[2] "/" path[3], $3, ipc
  }')

val() { printf '%s\n' "$parsed" | awk -v k="$1" -v f="$2" '$1==k {print $f}'; }

off_shared_ipc=$(val off/shared 3);       on_shared_ipc=$(val on/shared 3)
off_dedicated_ipc=$(val off/dedicated 3); on_dedicated_ipc=$(val on/dedicated 3)
off_shared_ns=$(val off/shared 2);        on_shared_ns=$(val on/shared 2)
off_dedicated_ns=$(val off/dedicated 2);  on_dedicated_ns=$(val on/dedicated 2)

speedup_shared=$(awk -v a="$off_shared_ipc" -v b="$on_shared_ipc" 'BEGIN { printf "%.3f", b / a }')
speedup_dedicated=$(awk -v a="$off_dedicated_ipc" -v b="$on_dedicated_ipc" 'BEGIN { printf "%.3f", b / a }')

cat >"$OUT" <<EOF
{
  "benchmark": "go test -bench BenchmarkPrefetch -benchtime $BENCHTIME",
  "off_shared_sim_ops_per_cycle": $off_shared_ipc,
  "on_shared_sim_ops_per_cycle": $on_shared_ipc,
  "off_dedicated_sim_ops_per_cycle": $off_dedicated_ipc,
  "on_dedicated_sim_ops_per_cycle": $on_dedicated_ipc,
  "off_shared_ns_op": $off_shared_ns,
  "on_shared_ns_op": $on_shared_ns,
  "off_dedicated_ns_op": $off_dedicated_ns,
  "on_dedicated_ns_op": $on_dedicated_ns,
  "speedup_shared": $speedup_shared,
  "speedup_dedicated": $speedup_dedicated,
  "workload": "treewalk stream, 50k instructions, scheme c, 16KB 2-way L2, 64MB protected; speedup = prefetch-on / prefetch-off simulated throughput"
}
EOF
echo "wrote $OUT: shared ${off_shared_ipc} -> ${on_shared_ipc} IPC (x${speedup_shared}), dedicated ${off_dedicated_ipc} -> ${on_dedicated_ipc} IPC (x${speedup_dedicated})"
