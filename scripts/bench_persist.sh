#!/usr/bin/env bash
# Measures the cost of crash-consistent checkpointing with cmd/loadgen and
# writes BENCH_persist.json. Three legs over a fixed workload (scheme c,
# 2 shards, 2 workers, 512 KiB protected): persistence off, coarse
# checkpoints (every 2000 ops/worker) and fine checkpoints (every 500),
# reporting wall-clock traffic throughput, bytes written per checkpoint
# and the measured recovery wall time for a kill/restart cycle at the end
# of the fine leg. Throughput numbers are best-of-REPS (shared-host
# noise); bytes_written and checkpoint counts are deterministic. The
# script fails loudly if any leg exits nonzero or if the final restart
# does not classify as a clean or torn recovery. Knobs: OPS, REPS, OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

OPS=${OPS:-8000}
REPS=${REPS:-3}
OUT=${OUT:-BENCH_persist.json}

bin=$(mktemp -t loadgen.XXXXXX)
tmp=$(mktemp -d -t persistbench.XXXXXX)
trap 'rm -rf "$bin" "$tmp"' EXIT
go build -o "$bin" ./cmd/loadgen

common=(-scheme c -shards 2 -workers 2 -ops "$OPS" -protected 524288 -seed 3)

run_leg() { # name extra-args...
  local name=$1; shift
  local best=0 ckpts=0 bytes=0
  for _ in $(seq "$REPS"); do
    rm -rf "$tmp/$name"
    local out
    out=$("$bin" "${common[@]}" "$@")
    local ops
    ops=$(printf '%s\n' "$out" | grep -o 'ops_per_sec=[0-9.]*' | cut -d= -f2)
    if awk -v a="$ops" -v b="$best" 'BEGIN { exit !(a > b) }'; then
      best=$ops
      ckpts=$(printf '%s\n' "$out" | grep -o 'checkpoints=[0-9]*' | cut -d= -f2 || true)
      bytes=$(printf '%s\n' "$out" | grep -o 'bytes_written=[0-9]*' | cut -d= -f2 || true)
    fi
  done
  best=$(awk -v v="$best" 'BEGIN { printf "%.1f", v }')
  echo "$name: $best ops/sec (checkpoints ${ckpts:-0}, bytes written ${bytes:-0})"
  eval "${name}_ops=$best ${name}_ckpts=${ckpts:-0} ${name}_bytes=${bytes:-0}"
}

run_leg off
run_leg coarse -persist "$tmp/coarse" -checkpoint-every 2000
run_leg fine -persist "$tmp/fine" -checkpoint-every 500

# Kill/restart cycle on the fine leg's store: recovery wall time includes
# WAL replay, segment restore and the full engine re-verification walk.
set +e
"$bin" "${common[@]}" -persist "$tmp/fine" -checkpoint-every 500 \
  -kill-after 2 -kill-stage seg-write >/dev/null 2>&1
status=$?
set -e
if [ "$status" -ne 3 ]; then
  echo "FAIL: kill leg exited $status, want 3" >&2
  exit 1
fi
t0=$(date +%s%N)
"$bin" "${common[@]}" -ops 1 -persist "$tmp/fine" -restart \
  -expect-outcome recovered-clean,recovered-torn >/dev/null
t1=$(date +%s%N)
recovery_ms=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.1f", (b - a) / 1e6 }')
echo "kill/restart recovery: ${recovery_ms} ms"

overhead_coarse=$(awk -v o="$off_ops" -v c="$coarse_ops" 'BEGIN { printf "%.3f", o / c }')
overhead_fine=$(awk -v o="$off_ops" -v f="$fine_ops" 'BEGIN { printf "%.3f", o / f }')

cat >"$OUT" <<EOF
{
  "benchmark": "cmd/loadgen -scheme c -shards 2 -workers 2 -ops $OPS -protected 524288 -seed 3 [-persist -checkpoint-every N], best of $REPS",
  "no_persist_ops_per_sec": $off_ops,
  "coarse_ops_per_sec": $coarse_ops,
  "coarse_checkpoints": $coarse_ckpts,
  "coarse_bytes_written": $coarse_bytes,
  "fine_ops_per_sec": $fine_ops,
  "fine_checkpoints": $fine_ckpts,
  "fine_bytes_written": $fine_bytes,
  "slowdown_coarse_x": $overhead_coarse,
  "slowdown_fine_x": $overhead_fine,
  "kill_restart_recovery_ms": $recovery_ms,
  "workload": "mixed 50/50 read-write, 512 KiB protected total, scheme c, fnv128; persist legs serialize worker rounds around checkpoints, so the slowdown includes both lost worker concurrency and checkpoint I/O; recovery time covers WAL replay, segment restore and the full engine re-verification walk"
}
EOF
echo "wrote $OUT"
