#!/usr/bin/env bash
# Measures what the speculative verification pipeline buys via
# BenchmarkSpeculative (cold Swim, 50k instructions: blocking vs
# speculative simulated throughput per scheme) and the loadgen mixed
# workload (naive, default traffic: host ops/sec plus total simulated
# machine-cycles), written to BENCH_async.json. base runs no
# verification, so its IPC is the ceiling and cannot move; the headline
# is the naive-vs-base overhead ratio (base IPC / naive IPC) shrinking
# from blocking to speculative — in-flight walk coalescing plus hidden
# check latency close most of the naive scheme's gap. ci.sh gates the
# naive speculative/blocking speedup at >= 1.5.
# Knobs: BENCHTIME (iterations/point), OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-5x}
OUT=${OUT:-BENCH_async.json}

raw=$(go test -run '^$' -bench BenchmarkSpeculative -benchtime "$BENCHTIME" .)

# "BenchmarkSpeculative/naive/speculative-8  5  8344747 ns/op ... 0.2299 naive-IPC ..."
# → "naive/speculative 8344747 0.2299"
parsed=$(printf '%s\n' "$raw" | awk '
  /^BenchmarkSpeculative\// {
    split($1, path, "/"); sub(/-[0-9]+$/, "", path[3])
    ipc = "?"
    for (i = 2; i <= NF; i++) if ($i ~ /-IPC$/) ipc = $(i - 1)
    print path[2] "/" path[3], $3, ipc
  }')

val() { printf '%s\n' "$parsed" | awk -v k="$1" -v f="$2" '$1==k {print $f}'; }

base_blk=$(val base/blocking 3);   base_spec=$(val base/speculative 3)
c_blk=$(val c/blocking 3);         c_spec=$(val c/speculative 3)
naive_blk=$(val naive/blocking 3); naive_spec=$(val naive/speculative 3)

ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", a / b }'; }
naive_speedup=$(ratio "$naive_spec" "$naive_blk")
c_speedup=$(ratio "$c_spec" "$c_blk")
gap_blk=$(ratio "$base_blk" "$naive_blk")
gap_spec=$(ratio "$base_spec" "$naive_spec")

# Loadgen mixed workload, naive scheme: blocking vs speculative. Host
# ops/sec is wall-clock — best of 3 as the least-noise estimate, as in
# bench_shard.sh; machine_cycles is total simulated work and
# deterministic for a fixed seed.
lg() { # $1 = extra flags
  best_ops=0 cyc=0
  for _ in 1 2 3; do
    # shellcheck disable=SC2086
    read -r ops cyc <<<"$(go run ./cmd/loadgen -scheme naive -seed 7 $1 |
      awk '/ops_per_sec=/ {
        for (i = 1; i <= NF; i++) {
          if ($i ~ /^ops_per_sec=/)    { split($i, a, "="); o = a[2] }
          if ($i ~ /^machine_cycles=/) { split($i, a, "="); c = a[2] }
        }
        print o, c
      }')"
    best_ops=$(awk -v a="$best_ops" -v b="$ops" 'BEGIN { print (b > a) ? b : a }')
  done
  echo "$best_ops" "$cyc"
}
read -r lg_blk_ops lg_blk_cyc <<<"$(lg '')"
read -r lg_spec_ops lg_spec_cyc <<<"$(lg '-speculative')"
lg_wall_speedup=$(ratio "$lg_spec_ops" "$lg_blk_ops")
# The deterministic throughput metric: caller operations per simulated
# machine-kilocycle (the op count is fixed, so this improves exactly as
# total simulated work shrinks). Host ops/sec is kept for reference but
# jitters heavily on shared CI machines.
lg_ops_total=80000 # 4 workers x 20000 ops (loadgen defaults)
lg_blk_sim=$(awk -v o="$lg_ops_total" -v c="$lg_blk_cyc" 'BEGIN { printf "%.4f", 1000 * o / c }')
lg_spec_sim=$(awk -v o="$lg_ops_total" -v c="$lg_spec_cyc" 'BEGIN { printf "%.4f", 1000 * o / c }')
lg_sim_speedup=$(ratio "$lg_blk_cyc" "$lg_spec_cyc")

cat >"$OUT" <<EOF
{
  "benchmark": "go test -bench BenchmarkSpeculative -benchtime $BENCHTIME; go run ./cmd/loadgen -scheme naive -seed 7 [-speculative]",
  "base_blocking_sim_ops_per_cycle": $base_blk,
  "base_speculative_sim_ops_per_cycle": $base_spec,
  "c_blocking_sim_ops_per_cycle": $c_blk,
  "c_speculative_sim_ops_per_cycle": $c_spec,
  "naive_blocking_sim_ops_per_cycle": $naive_blk,
  "naive_speculative_sim_ops_per_cycle": $naive_spec,
  "naive_speedup": $naive_speedup,
  "c_speedup": $c_speedup,
  "naive_vs_base_ratio_blocking": $gap_blk,
  "naive_vs_base_ratio_speculative": $gap_spec,
  "loadgen_naive_blocking_sim_ops_per_kcycle": $lg_blk_sim,
  "loadgen_naive_speculative_sim_ops_per_kcycle": $lg_spec_sim,
  "loadgen_naive_sim_speedup": $lg_sim_speedup,
  "loadgen_naive_blocking_machine_cycles": $lg_blk_cyc,
  "loadgen_naive_speculative_machine_cycles": $lg_spec_cyc,
  "loadgen_naive_blocking_host_ops_per_sec": $lg_blk_ops,
  "loadgen_naive_speculative_host_ops_per_sec": $lg_spec_ops,
  "loadgen_naive_host_ops_speedup": $lg_wall_speedup,
  "workload": "cold Swim 50k instructions per scheme; base runs no verification so it is the fixed ceiling (the gap being closed, unchanged by construction); naive_vs_base_ratio = base IPC / naive IPC, shrinking from blocking to speculative; loadgen = mixed 4-shard read/write traffic, naive scheme, 80k caller ops: sim_ops_per_kcycle (deterministic, ops per thousand simulated machine-cycles) is the throughput metric, host ops/sec is wall-clock and noisy"
}
EOF
echo "wrote $OUT: naive ${naive_blk} -> ${naive_spec} IPC (x${naive_speedup}), naive-vs-base gap ${gap_blk}x -> ${gap_spec}x, loadgen cycles ${lg_blk_cyc} -> ${lg_spec_cyc}"
