#!/usr/bin/env bash
# Measures the hash-execution modes via BenchmarkFunctionalThroughput: one
# functional simulation per protected scheme (naive, c, m, i) in full,
# timing-only and memoized digest execution, written to
# BENCH_hashmode.json. All three modes produce identical metrics — only
# the simulator's own speed differs. Knobs: BENCHTIME (iterations/point),
# OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-5x}
OUT=${OUT:-BENCH_hashmode.json}

raw=$(go test -run '^$' -bench BenchmarkFunctionalThroughput -benchtime "$BENCHTIME" .)

# "BenchmarkFunctionalThroughput/c/timing-N   5   12204659 ns/op ..." →
# "c timing 12204659"
parsed=$(printf '%s\n' "$raw" | awk '
  /^BenchmarkFunctionalThroughput\// {
    split($1, path, "/"); sub(/-[0-9]+$/, "", path[3])
    print path[2], path[3], $3
  }')

rows=""
for scheme in naive c m i; do
  full_ns=$(printf '%s\n' "$parsed" | awk -v s="$scheme" '$1==s && $2=="full" {print $3}')
  timing_ns=$(printf '%s\n' "$parsed" | awk -v s="$scheme" '$1==s && $2=="timing" {print $3}')
  memo_ns=$(printf '%s\n' "$parsed" | awk -v s="$scheme" '$1==s && $2=="memo" {print $3}')
  timing_x=$(awk -v f="$full_ns" -v t="$timing_ns" 'BEGIN { printf "%.2f", f / t }')
  memo_x=$(awk -v f="$full_ns" -v m="$memo_ns" 'BEGIN { printf "%.2f", f / m }')
  echo "$scheme: full ${full_ns} ns/op, timing ${timing_ns} ns/op (${timing_x}x), memo ${memo_ns} ns/op (${memo_x}x)"
  rows="$rows    {\"full_ns_op\": $full_ns, \"memo_ns_op\": $memo_ns, \"memo_speedup\": $memo_x, \"scheme\": \"$scheme\", \"timing_ns_op\": $timing_ns, \"timing_speedup\": $timing_x},\n"
done
rows=$(printf '%b' "$rows" | sed '$ s/,$//')

cat >"$OUT" <<EOF
{
  "benchmark": "go test -bench BenchmarkFunctionalThroughput -benchtime $BENCHTIME",
  "modes": ["full", "timing", "memo"],
  "schemes": [
$rows
  ],
  "workload": "art, 100k instructions, 8 MiB protected, md5"
}
EOF
echo "wrote $OUT"
