#!/usr/bin/env bash
# Measures the telemetry layer's overhead contract via
# BenchmarkTelemetryOverhead: the same simulation with no recorder
# attached (disabled — must stay within 2% of an uninstrumented build)
# and with a full recorder (enabled — the price of tracing), written to
# BENCH_telemetry.json. Knobs: BENCHTIME (iterations/point), OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-10x}
OUT=${OUT:-BENCH_telemetry.json}

raw=$(go test -run '^$' -bench BenchmarkTelemetryOverhead -benchtime "$BENCHTIME" .)

# "BenchmarkTelemetryOverhead/disabled-N  10  5812615 ns/op ... 112 allocs/op"
# → "disabled 5812615 112"
parsed=$(printf '%s\n' "$raw" | awk '
  /^BenchmarkTelemetryOverhead\// {
    split($1, path, "/"); sub(/-[0-9]+$/, "", path[2])
    allocs = "?"
    for (i = 2; i <= NF; i++) if ($i == "allocs/op") allocs = $(i - 1)
    print path[2], $3, allocs
  }')

disabled_ns=$(printf '%s\n' "$parsed" | awk '$1=="disabled" {print $2}')
enabled_ns=$(printf '%s\n' "$parsed" | awk '$1=="enabled" {print $2}')
disabled_allocs=$(printf '%s\n' "$parsed" | awk '$1=="disabled" {print $3}')
enabled_allocs=$(printf '%s\n' "$parsed" | awk '$1=="enabled" {print $3}')
overhead=$(awk -v d="$disabled_ns" -v e="$enabled_ns" 'BEGIN { printf "%.3f", (e - d) / d }')

cat >"$OUT" <<EOF
{
  "benchmark": "go test -bench BenchmarkTelemetryOverhead -benchtime $BENCHTIME",
  "disabled_allocs_op": $disabled_allocs,
  "disabled_ns_op": $disabled_ns,
  "enabled_allocs_op": $enabled_allocs,
  "enabled_ns_op": $enabled_ns,
  "enabled_overhead": $overhead,
  "workload": "swim, 50k instructions, scheme c, trace + probes + bus windows"
}
EOF
echo "wrote $OUT: disabled ${disabled_ns} ns/op, enabled ${enabled_ns} ns/op (+${overhead})"
