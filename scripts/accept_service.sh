#!/usr/bin/env bash
# Acceptance run for the networked verified-memory service: one memverifyd
# hosting four tenants (one per tree scheme) must absorb a 1M-op mixed
# workload from 100 concurrent client workers — four parallel loadgen
# -remote processes, 25 workers each — with zero mirror mismatches and a
# clean final verification per tenant, stay metricscheck-clean on a live
# scrape while under load, contain a tampered tenant to a 503 for that
# tenant only, and exit 0 on SIGTERM with a flight record that carries the
# signal event. Knobs: OPS (per worker), WORKERS (per tenant), PERSIST=1
# to run the tenants on a checkpointed store.
set -euo pipefail
cd "$(dirname "$0")/.."

OPS=${OPS:-10000}
WORKERS=${WORKERS:-25}

tmp=$(mktemp -d -t memverify-accept.XXXXXX)
cleanup() {
  [ -n "${mvdpid:-}" ] && kill "$mvdpid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/memverifyd" ./cmd/memverifyd
go build -o "$tmp/loadgen" ./cmd/loadgen
go build -o "$tmp/metricscheck" ./cmd/metricscheck

persist_args=()
if [ "${PERSIST:-0}" = "1" ]; then
  persist_args=(-persist "$tmp/store" -checkpoint-every 5s)
fi

"$tmp/memverifyd" -listen 127.0.0.1:0 \
  -tenants 'naive:scheme=naive,cached:scheme=c,multi:scheme=m,incr:scheme=i' \
  -protected $((8 << 20)) -allow-tamper -sample-every 250ms \
  -flight "$tmp/flight.json" "${persist_args[@]}" >"$tmp/mvd.log" 2>&1 &
mvdpid=$!
addr=""
for _ in $(seq 1 200); do
  addr=$(sed -n 's#^memverifyd: serving on http://\([^ ]*\).*#\1#p' "$tmp/mvd.log" | head -1)
  [ -n "$addr" ] && break
  sleep 0.05
done
[ -n "$addr" ] || { echo "FAIL: memverifyd never came up" >&2; exit 1; }
echo "memverifyd up at $addr ($WORKERS workers x $OPS ops x 4 tenants = $((4 * WORKERS * OPS)) ops)"

# The 100-connection barrage: four loadgens in parallel, one per tenant.
pids=()
for tenant in naive cached multi incr; do
  "$tmp/loadgen" -remote "$addr" -tenant "$tenant" -workload mixed \
    -workers "$WORKERS" -ops "$OPS" >"$tmp/$tenant.out" 2>&1 &
  pids+=($!)
done
# Live scrape mid-load: the exposition must already be structurally clean.
sleep 1
curl -fsS "http://$addr/metrics" >"$tmp/scrape1.prom"
"$tmp/metricscheck" "$tmp/scrape1.prom"
failed=0
for i in 0 1 2 3; do
  wait "${pids[$i]}" || failed=1
done
if [ "$failed" -ne 0 ]; then
  echo "FAIL: a tenant's mirror-checked leg failed:" >&2
  tail -5 "$tmp"/*.out >&2
  exit 1
fi
grep -h 'ops_per_sec' "$tmp"/*.out
# Second scrape: counters must be monotonic against the mid-load baseline.
"$tmp/metricscheck" -url "http://$addr/metrics" -prev "$tmp/scrape1.prom"

# Containment: tamper one tenant, its leg must fail while another still
# serves and overall health only degrades.
if "$tmp/loadgen" -remote "$addr" -tenant incr -workers 2 -ops 500 -tamper 0 >/dev/null 2>&1; then
  echo "FAIL: tampered tenant passed its loadgen leg" >&2
  exit 1
fi
"$tmp/loadgen" -remote "$addr" -tenant cached -workers 2 -ops 500 >/dev/null
"$tmp/metricscheck" -get "http://$addr/healthz" | grep -q '"status": "degraded"' || {
  echo "FAIL: tampered tenant did not degrade /healthz" >&2; exit 1; }

# SIGTERM mid-run: kill the daemon while a fresh leg is still sending.
# The daemon must drain what it admitted and exit 0; the orphaned client
# fails, which is its problem, not the daemon's.
"$tmp/loadgen" -remote "$addr" -tenant cached -workers 10 -ops 100000 \
  >/dev/null 2>&1 &
lastpid=$!
sleep 0.5
kill -TERM "$mvdpid"
set +e
wait "$mvdpid"
status=$?
wait "$lastpid" 2>/dev/null
set -e
mvdpid=""
[ "$status" -eq 0 ] || { echo "FAIL: memverifyd exited $status on SIGTERM" >&2; exit 1; }
grep -q '"kind": "signal"' "$tmp/flight.json" || {
  echo "FAIL: flight record missing the signal event" >&2; exit 1; }
echo "service acceptance OK"
