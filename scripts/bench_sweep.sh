#!/usr/bin/env bash
# Measures the parallel sweep engine: wall-clock of one figure batch with
# workers=1 (serial reference) vs workers=0 (all cores), written to
# BENCH_sweep.json. Knobs: N (instructions/point), WARMUP, OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

N=${N:-40000}
WARMUP=${WARMUP:-20000}
OUT=${OUT:-BENCH_sweep.json}

bin=$(mktemp -t memverify-figures.XXXXXX)
trap 'rm -f "$bin"' EXIT
go build -o "$bin" ./cmd/figures

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)

time_run() {
  local workers=$1 start end
  start=$(date +%s%N)
  "$bin" -fig5 -fig8 -n "$N" -warmup "$WARMUP" -workers "$workers" >/dev/null
  end=$(date +%s%N)
  echo $(((end - start) / 1000000))
}

# Untimed warm-up so binary/page-cache effects don't land on the serial leg.
time_run 1 >/dev/null
serial_ms=$(time_run 1)
parallel_ms=$(time_run 0)
speedup=$(awk -v s="$serial_ms" -v p="$parallel_ms" 'BEGIN { printf "%.3f", s / p }')

cat >"$OUT" <<EOF
{
  "benchmark": "cmd/figures -fig5 -fig8 -n $N -warmup $WARMUP",
  "cpus": $cores,
  "parallel_ms": $parallel_ms,
  "serial_ms": $serial_ms,
  "speedup": $speedup
}
EOF
echo "wrote $OUT: serial ${serial_ms} ms, parallel ${parallel_ms} ms on $cores cpu(s), speedup ${speedup}x"
