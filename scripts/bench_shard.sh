#!/usr/bin/env bash
# Measures sharded-store throughput with cmd/loadgen at 1, 2, 4 and 8
# shards over a fixed 8 MiB protected region and writes BENCH_shard.json.
# Each point is the best of REPS runs (wall-clock ops/sec on a shared
# host is noisy; the underlying effect — shallower per-shard trees and N×
# aggregate L2 — shows up in the deterministic checks/machine_cycles
# columns, which strictly decrease with the shard count). The sweep fails
# loudly if ops/sec is not monotonically non-decreasing from 1 to 4
# shards. Knobs: OPS (per worker), REPS, OUT.
set -euo pipefail
cd "$(dirname "$0")/.."

OPS=${OPS:-20000}
REPS=${REPS:-3}
OUT=${OUT:-BENCH_shard.json}

bin=$(mktemp -t loadgen.XXXXXX)
trap 'rm -f "$bin"' EXIT
go build -o "$bin" ./cmd/loadgen

rows=""
prev=0
prev_n=0
for n in 1 2 4 8; do
  best=0 checks=0 cycles=0
  for _ in $(seq "$REPS"); do
    out=$("$bin" -shards "$n" -workers 2 -ops "$OPS" -seed 3 -verify=false)
    ops=$(printf '%s\n' "$out" | grep -o 'ops_per_sec=[0-9.]*' | cut -d= -f2)
    if awk -v a="$ops" -v b="$best" 'BEGIN { exit !(a > b) }'; then
      best=$ops
      checks=$(printf '%s\n' "$out" | grep -o 'checks=[0-9]*' | cut -d= -f2)
      cycles=$(printf '%s\n' "$out" | grep -o 'machine_cycles=[0-9]*' | cut -d= -f2)
    fi
  done
  best=$(awk -v v="$best" 'BEGIN { printf "%.1f", v }')
  echo "shards=$n: $best ops/sec (checks $checks, machine cycles $cycles)"
  rows="$rows    {\"checks\": $checks, \"machine_cycles\": $cycles, \"ops_per_sec\": $best, \"shards\": $n},\n"
  if [ "$n" -le 4 ] && awk -v p="$prev" -v c="$best" 'BEGIN { exit !(c < p) }'; then
    echo "FAIL: ops/sec fell from $prev ($prev_n shards) to $best ($n shards)" >&2
    exit 1
  fi
  prev=$best
  prev_n=$n
done
rows=$(printf '%b' "$rows" | sed '$ s/,$//')

cat >"$OUT" <<EOF
{
  "benchmark": "cmd/loadgen -workers 2 -ops $OPS -seed 3 -verify=false, best of $REPS",
  "points": [
$rows
  ],
  "workload": "mixed 50/50 read-write, 8 MiB protected total, scheme c, fnv128, 256 KiB L2 per shard"
}
EOF
echo "wrote $OUT"
