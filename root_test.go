package memverify

import "testing"

// TestDisabledTelemetryAllocsAreConstructionOnly pins the alloc half of
// the telemetry overhead contract at whole-simulation scope: with no
// recorder attached every emission site is a nil-receiver no-op, so
// allocations are one-time machine construction and a 16x longer run must
// not allocate more than a short one (small slack absorbs GC noise).
func TestDisabledTelemetryAllocsAreConstructionOnly(t *testing.T) {
	run := func(n uint64) float64 {
		cfg := DefaultConfig()
		cfg.Scheme = SchemeCached
		cfg.Benchmark, _ = BenchmarkByName("swim")
		cfg.Instructions = n
		cfg.Warmup = 0
		return testing.AllocsPerRun(3, func() {
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := run(20_000), run(320_000)
	if long > short+32 {
		t.Errorf("16x instructions grew allocs from %.0f to %.0f: the disabled hot path is allocating", short, long)
	}
}

// TestFacade exercises the root package's re-exports end to end.
func TestFacade(t *testing.T) {
	if len(Benchmarks()) != 9 {
		t.Fatalf("Benchmarks() returned %d profiles", len(Benchmarks()))
	}
	p, ok := BenchmarkByName("mcf")
	if !ok || p.Name != "mcf" {
		t.Fatal("BenchmarkByName failed")
	}
	cfg := DefaultConfig()
	cfg.Scheme = SchemeCached
	cfg.Benchmark = p
	cfg.Instructions = 20_000
	cfg.Warmup = 5_000
	mt, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Violations != 0 || mt.IPC <= 0 {
		t.Fatalf("metrics: %+v", mt)
	}
	if _, err := NewMachine(cfg); err != nil {
		t.Fatal(err)
	}
	fp := DefaultFigureParams()
	if fp.Instructions == 0 {
		t.Fatal("figure params empty")
	}
	for _, s := range []Scheme{SchemeBase, SchemeNaive, SchemeCached, SchemeMulti, SchemeIncr} {
		if s == "" {
			t.Fatal("empty scheme constant")
		}
	}
}
