package memverify

import "testing"

// TestFacade exercises the root package's re-exports end to end.
func TestFacade(t *testing.T) {
	if len(Benchmarks()) != 9 {
		t.Fatalf("Benchmarks() returned %d profiles", len(Benchmarks()))
	}
	p, ok := BenchmarkByName("mcf")
	if !ok || p.Name != "mcf" {
		t.Fatal("BenchmarkByName failed")
	}
	cfg := DefaultConfig()
	cfg.Scheme = SchemeCached
	cfg.Benchmark = p
	cfg.Instructions = 20_000
	cfg.Warmup = 5_000
	mt, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mt.Violations != 0 || mt.IPC <= 0 {
		t.Fatalf("metrics: %+v", mt)
	}
	if _, err := NewMachine(cfg); err != nil {
		t.Fatal(err)
	}
	fp := DefaultFigureParams()
	if fp.Instructions == 0 {
		t.Fatal("figure params empty")
	}
	for _, s := range []Scheme{SchemeBase, SchemeNaive, SchemeCached, SchemeMulti, SchemeIncr} {
		if s == "" {
			t.Fatal("empty scheme constant")
		}
	}
}
